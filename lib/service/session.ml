open Ltc_core

exception Corrupt_journal of { path : string; message : string }

let corrupt ~path fmt =
  Format.kasprintf
    (fun message -> raise (Corrupt_journal { path; message }))
    fmt

type decision = {
  worker : int;
  assigned : int list;
  answered : int list;
  completed : bool;
  latency : int;
}

type journal = {
  path : string;
  mutable oc : out_channel;
  mutable events_since_snapshot : int;
  checkpoint_every : int;
}

type t = {
  instance : Instance.t;  (* task side only: workers stripped *)
  algorithm : Ltc_algo.Algorithm.t;
  seed : int;
  accept_rate : float option;
  policy_rng : Ltc_util.Rng.t;
  noshow_rng : Ltc_util.Rng.t;
  tracker : Ltc_util.Mem.Tracker.t;
  progress : Progress.t;
  decide : Worker.t -> int list;
  mutable arrangement : Arrangement.t;
  mutable consumed : int;
  mutable journal : journal option;
  mutable closed : bool;
  m_feed : Ltc_util.Metrics.Histogram.t;
  m_bytes : Ltc_util.Metrics.Gauge.t;
  m_snapshots : Ltc_util.Metrics.Counter.t;
}

let fp = Printf.sprintf "%.17g"

let service_metrics name =
  let labels = [ ("algo", name) ] in
  ( Ltc_util.Metrics.histogram ~help:"per-arrival feed latency (s)" ~labels
      "ltc_service_feed_seconds",
    Ltc_util.Metrics.gauge ~help:"journal file size (bytes)" ~labels
      "ltc_service_journal_bytes",
    Ltc_util.Metrics.counter ~help:"journal snapshots written" ~labels
      "ltc_service_snapshots_total" )

(* The session never reads [instance.workers] (arrivals come from the
   stream), so it holds — and journals — the task side only.  Using the
   stripped instance for the live run too keeps live and restored sessions
   structurally identical. *)
let strip_workers (i : Instance.t) =
  if Array.length i.Instance.workers = 0 then i
  else
    Instance.create ~accuracy:i.Instance.accuracy ~scoring:i.Instance.scoring
      ~candidate_radius:i.Instance.candidate_radius ~tasks:i.Instance.tasks
      ~workers:[||] ~epsilon:i.Instance.epsilon ()

(* Both generators fork off one root so a session is a pure function of
   [seed]: the policy stream feeds seeded policies (Random), the no-show
   stream feeds the accept-rate draws.  Separate streams keep the two
   concerns independent: turning noise on or off never perturbs the
   policy's samples. *)
let derive_rngs ~seed =
  let root = Ltc_util.Rng.create ~seed in
  let policy_rng = Ltc_util.Rng.split root in
  let noshow_rng = Ltc_util.Rng.split root in
  (policy_rng, noshow_rng)

(* ------------------------------------------------------- journal format *)

let write_header oc t checkpoint_every =
  let sink = output_string oc in
  let pf fmt = Printf.ksprintf sink fmt in
  pf "ltc-journal v1\n";
  pf "algorithm %s\n" t.algorithm.Ltc_algo.Algorithm.name;
  pf "seed %d\n" t.seed;
  (match t.accept_rate with
  | None -> pf "accept_rate none\n"
  | Some q -> pf "accept_rate %s\n" (fp q));
  pf "checkpoint_every %d\n" checkpoint_every;
  Serialize.emit_instance sink t.instance

let write_snapshot oc t =
  let sink = output_string oc in
  let pf fmt = Printf.ksprintf sink fmt in
  pf "snapshot\n";
  pf "consumed %d\n" t.consumed;
  pf "rng %Ld %Ld\n"
    (Ltc_util.Rng.state t.policy_rng)
    (Ltc_util.Rng.state t.noshow_rng);
  Serialize.emit_progress sink t.progress;
  Serialize.emit_arrangement sink t.arrangement;
  pf "end-snapshot\n"

let journal_size j =
  flush j.oc;
  out_channel_length j.oc

(* Compaction: atomically replace the journal with header + one snapshot
   of the current state.  Recovery work is thereby bounded by
   [checkpoint_every] replayed arrivals regardless of session age. *)
let checkpoint t =
  match t.journal with
  | None -> ()
  | Some j ->
    Ltc_util.Trace.with_span "service:checkpoint" @@ fun () ->
    close_out j.oc;
    let tmp = j.path ^ ".tmp" in
    let oc = open_out tmp in
    (try
       write_header oc t j.checkpoint_every;
       write_snapshot oc t;
       close_out oc
     with e ->
       close_out_noerr oc;
       raise e);
    Sys.rename tmp j.path;
    j.oc <- open_out_gen [ Open_wronly; Open_append ] 0o644 j.path;
    j.events_since_snapshot <- 0;
    Ltc_util.Metrics.Counter.incr t.m_snapshots;
    Ltc_util.Metrics.Gauge.set t.m_bytes (float_of_int (journal_size j))

let journal_event t (w : Worker.t) d =
  match t.journal with
  | None -> ()
  | Some j ->
    let sink = output_string j.oc in
    let pf fmt = Printf.ksprintf sink fmt in
    pf "w %d %s %s %s %d\n" w.index
      (fp w.loc.Ltc_geo.Point.x)
      (fp w.loc.Ltc_geo.Point.y)
      (fp w.accuracy) w.capacity;
    (* The trailing "." terminates the record: a torn append never parses
       as a complete decision, so restore re-feeds the arrival instead of
       trusting half a line. *)
    pf "d %d %d%s %d%s .\n" d.worker
      (List.length d.assigned)
      (String.concat "" (List.map (Printf.sprintf " %d") d.assigned))
      (List.length d.answered)
      (String.concat "" (List.map (Printf.sprintf " %d") d.answered));
    flush j.oc;
    j.events_since_snapshot <- j.events_since_snapshot + 1;
    Ltc_util.Metrics.Gauge.set t.m_bytes (float_of_int (journal_size j));
    if j.events_since_snapshot >= j.checkpoint_every then checkpoint t

(* ---------------------------------------------------------- construction *)

let make_session ~instance ~algorithm ~seed ~accept_rate ~policy_rng
    ~noshow_rng ~progress ~arrangement ~consumed =
  let policy_of =
    match algorithm.Ltc_algo.Algorithm.policy with
    | Some p -> p
    | None ->
      invalid_arg
        (Printf.sprintf
           "Session: %s cannot serve an arrival stream (offline or \
            release-scheduled algorithm)"
           algorithm.Ltc_algo.Algorithm.name)
  in
  let tracker = Ltc_util.Mem.Tracker.create () in
  Ltc_util.Mem.Tracker.set_baseline_words tracker
    (Progress.memory_words progress);
  let decide = policy_of policy_rng instance tracker progress in
  let m_feed, m_bytes, m_snapshots =
    service_metrics algorithm.Ltc_algo.Algorithm.name
  in
  {
    instance;
    algorithm;
    seed;
    accept_rate;
    policy_rng;
    noshow_rng;
    tracker;
    progress;
    decide;
    arrangement;
    consumed;
    journal = None;
    closed = false;
    m_feed;
    m_bytes;
    m_snapshots;
  }

let validate_accept_rate = function
  | Some q when q <= 0.0 || q > 1.0 ->
    invalid_arg "Session.create: accept_rate must be in (0, 1]"
  | _ -> ()

let create ?accept_rate ?journal ?(checkpoint_every = 256) ~algorithm ~seed
    instance =
  validate_accept_rate accept_rate;
  if checkpoint_every < 1 then
    invalid_arg "Session.create: checkpoint_every must be >= 1";
  let instance = strip_workers instance in
  let policy_rng, noshow_rng = derive_rngs ~seed in
  let progress =
    Progress.create_per_task ~thresholds:(Instance.thresholds instance)
  in
  let t =
    make_session ~instance ~algorithm ~seed ~accept_rate ~policy_rng
      ~noshow_rng ~progress ~arrangement:Arrangement.empty ~consumed:0
  in
  (match journal with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    write_header oc t checkpoint_every;
    flush oc;
    let j = { path; oc; events_since_snapshot = 0; checkpoint_every } in
    t.journal <- Some j;
    Ltc_util.Metrics.Gauge.set t.m_bytes (float_of_int (journal_size j)));
  t

(* ----------------------------------------------------------------- feed *)

let completed t = Progress.all_complete t.progress
let consumed t = t.consumed
let latency t = Arrangement.latency t.arrangement
let arrangement t = t.arrangement
let algorithm_name t = t.algorithm.Ltc_algo.Algorithm.name

let rng_states t =
  (Ltc_util.Rng.state t.policy_rng, Ltc_util.Rng.state t.noshow_rng)

let peak_memory_mb t = Ltc_util.Mem.Tracker.high_water_mb t.tracker

let feed t (w : Worker.t) =
  if t.closed then invalid_arg "Session.feed: session is closed";
  if completed t then
    (* Engine parity: the batch loop stops before consuming the arrival
       that follows completion, so a finished session acknowledges further
       workers without consuming capacity, RNG draws or journal space. *)
    {
      worker = w.index;
      assigned = [];
      answered = [];
      completed = true;
      latency = latency t;
    }
  else begin
    if w.index <> t.consumed + 1 then
      invalid_arg
        (Printf.sprintf "Session.feed: expected arrival %d, got %d"
           (t.consumed + 1) w.index);
    let timing = Ltc_util.Metrics.enabled () in
    let t0 = if timing then Some (Ltc_util.Timer.start ()) else None in
    let assigned = t.decide w in
    Ltc_algo.Engine.check_decisions t.instance w assigned;
    t.consumed <- t.consumed + 1;
    let answered_rev = ref [] in
    (* Same gating as Engine.run: one bernoulli draw per assigned task, in
       assignment order, whether or not earlier draws failed. *)
    List.iter
      (fun task ->
        let ok =
          match t.accept_rate with
          | None -> true
          | Some q -> Ltc_util.Rng.bernoulli t.noshow_rng q
        in
        if ok then begin
          Progress.record t.progress ~task
            ~score:(Instance.score t.instance w task);
          t.arrangement <- Arrangement.add t.arrangement ~worker:w.index ~task;
          answered_rev := task :: !answered_rev
        end)
      assigned;
    let d =
      {
        worker = w.index;
        assigned;
        answered = List.rev !answered_rev;
        completed = completed t;
        latency = latency t;
      }
    in
    journal_event t w d;
    (match t0 with
    | Some t0 ->
      Ltc_util.Metrics.Histogram.observe t.m_feed (Ltc_util.Timer.elapsed_s t0)
    | None -> ());
    d
  end

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.journal with
    | None -> ()
    | Some j ->
      flush j.oc;
      close_out j.oc
  end

(* -------------------------------------------------------------- restore *)

type parsed_snapshot = {
  s_consumed : int;
  s_policy : int64;
  s_noshow : int64;
  s_progress : Progress.t;
  s_arrangement : Arrangement.t;
}

type parsed_header = {
  h_algorithm : string;
  h_seed : int;
  h_accept_rate : float option;
  h_checkpoint_every : int;
  h_instance : Instance.t;
}

let parse_header ~path src =
  let line_no () = Serialize.line_number src in
  let expect what =
    match Serialize.next_line_opt src with
    | Some line -> line
    | None -> corrupt ~path "truncated header: expected %s" what
  in
  (match expect "the journal magic" with
  | "ltc-journal v1" -> ()
  | other -> corrupt ~path "bad journal header %S" other);
  let h_algorithm =
    match Serialize.fields (expect "an algorithm line") with
    | [ "algorithm"; name ] -> name
    | _ -> corrupt ~path "line %d: expected 'algorithm <name>'" (line_no ())
  in
  let h_seed =
    match Serialize.fields (expect "a seed line") with
    | [ "seed"; s ] -> Serialize.int_field src s
    | _ -> corrupt ~path "line %d: expected 'seed <int>'" (line_no ())
  in
  let h_accept_rate =
    match Serialize.fields (expect "an accept_rate line") with
    | [ "accept_rate"; "none" ] -> None
    | [ "accept_rate"; q ] -> Some (Serialize.float_field src q)
    | _ ->
      corrupt ~path "line %d: expected 'accept_rate none|<float>'" (line_no ())
  in
  let h_checkpoint_every =
    match Serialize.fields (expect "a checkpoint_every line") with
    | [ "checkpoint_every"; n ] -> Serialize.int_field src n
    | _ ->
      corrupt ~path "line %d: expected 'checkpoint_every <int>'" (line_no ())
  in
  let h_instance = Serialize.parse_instance src in
  { h_algorithm; h_seed; h_accept_rate; h_checkpoint_every; h_instance }

(* Scan the event tail.  Anything after the last complete record —
   a torn arrival or decision line, a half-written snapshot — is treated
   as lost to the crash and dropped; the stream replays it on resume. *)
exception Torn_tail

let parse_snapshot src =
  let fail () = raise Torn_tail in
  let next () =
    match Serialize.next_line_opt src with Some l -> l | None -> fail ()
  in
  let s_consumed =
    match Serialize.fields (next ()) with
    | [ "consumed"; n ] -> (
      match int_of_string_opt n with Some n -> n | None -> fail ())
    | _ -> fail ()
  in
  let s_policy, s_noshow =
    match Serialize.fields (next ()) with
    | [ "rng"; p; q ] -> (
      match (Int64.of_string_opt p, Int64.of_string_opt q) with
      | Some p, Some q -> (p, q)
      | _ -> fail ())
    | _ -> fail ()
  in
  let s_progress =
    try Serialize.parse_progress src
    with Serialize.Parse_error _ -> fail ()
  in
  let s_arrangement =
    try Serialize.parse_arrangement src
    with Serialize.Parse_error _ -> fail ()
  in
  (match Serialize.next_line_opt src with
  | Some "end-snapshot" -> ()
  | Some _ | None -> fail ());
  { s_consumed; s_policy; s_noshow; s_progress; s_arrangement }

let parse_arrival_fields src rest =
  match rest with
  | [ index; x; y; accuracy; capacity ] -> (
    try
      Worker.make
        ~index:(Serialize.int_field src index)
        ~loc:
          (Ltc_geo.Point.make
             ~x:(Serialize.float_field src x)
             ~y:(Serialize.float_field src y))
        ~accuracy:(Serialize.float_field src accuracy)
        ~capacity:(Serialize.int_field src capacity)
    with Serialize.Parse_error _ | Invalid_argument _ -> raise Torn_tail)
  | _ -> raise Torn_tail

let parse_decision_fields (w : Worker.t) rest =
  let int s =
    match int_of_string_opt s with Some i -> i | None -> raise Torn_tail
  in
  let rec take k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | x :: rest -> take (k - 1) (int x :: acc) rest
    | [] -> raise Torn_tail
  in
  match rest with
  | index :: k :: rest ->
    if int index <> w.index then raise Torn_tail;
    let assigned, rest = take (int k) [] rest in
    (match rest with
    | m :: rest ->
      let answered, rest = take (int m) [] rest in
      if rest <> [ "." ] then raise Torn_tail;
      (assigned, answered)
    | [] -> raise Torn_tail)
  | _ -> raise Torn_tail

let scan_events src =
  let best = ref None in
  let tail = ref [] in
  (try
     let continue = ref true in
     while !continue do
       match Serialize.next_line_opt src with
       | None -> continue := false
       | Some line -> (
         match Serialize.fields line with
         | [ "snapshot" ] ->
           let s = parse_snapshot src in
           best := Some s;
           tail := []
         | "w" :: rest -> (
           let w = parse_arrival_fields src rest in
           match Serialize.next_line_opt src with
           | Some dline -> (
             match Serialize.fields dline with
             | "d" :: drest ->
               let assigned, answered = parse_decision_fields w drest in
               tail := (w, assigned, answered) :: !tail
             | _ -> raise Torn_tail)
           | None ->
             (* Arrival journaled, decision lost: the arrival was never
                fully processed — drop it, the stream re-feeds it. *)
             raise Torn_tail)
         | _ -> raise Torn_tail)
     done
   with Torn_tail -> ());
  (!best, List.rev !tail)

let restore ?journal ~path () =
  Ltc_util.Trace.with_span "service:restore" @@ fun () ->
  let header, snapshot, tail =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let src = Serialize.source_of_channel ic in
        let header =
          try parse_header ~path src
          with Serialize.Parse_error { line; message } ->
            corrupt ~path "line %d: %s" line message
        in
        let snapshot, tail = scan_events src in
        (header, snapshot, tail))
  in
  let algorithm =
    match Ltc_algo.Algorithm.find_opt header.h_algorithm with
    | Some a -> a
    | None -> corrupt ~path "unknown algorithm %S" header.h_algorithm
  in
  let instance = header.h_instance in
  let policy_rng, noshow_rng, progress, arrangement, consumed =
    match snapshot with
    | None ->
      let policy_rng, noshow_rng = derive_rngs ~seed:header.h_seed in
      let progress =
        Progress.create_per_task ~thresholds:(Instance.thresholds instance)
      in
      (policy_rng, noshow_rng, progress, Arrangement.empty, 0)
    | Some s ->
      if Progress.n_tasks s.s_progress <> Instance.task_count instance then
        corrupt ~path "snapshot progress does not match the instance";
      ( Ltc_util.Rng.of_state s.s_policy,
        Ltc_util.Rng.of_state s.s_noshow,
        s.s_progress,
        s.s_arrangement,
        s.s_consumed )
  in
  let t =
    try
      make_session ~instance ~algorithm ~seed:header.h_seed
        ~accept_rate:header.h_accept_rate ~policy_rng ~noshow_rng ~progress
        ~arrangement ~consumed
    with Invalid_argument m -> corrupt ~path "%s" m
  in
  (* Replay the tail by re-running the policy — required to advance the
     policy/no-show streams exactly as the original run did — and verify
     the recomputed decisions against the journaled ones: a divergence
     means the journal does not describe this code/instance and silently
     continuing would corrupt the run. *)
  List.iter
    (fun ((w : Worker.t), assigned, answered) ->
      let d =
        try feed t w
        with
        | Invalid_argument m | Ltc_algo.Engine.Invalid_decision m ->
          corrupt ~path "replaying arrival %d: %s" w.index m
      in
      if d.assigned <> assigned || d.answered <> answered then
        corrupt ~path
          "replayed decision for arrival %d diverges from the journal"
          w.index)
    tail;
  (* Re-attach the journal (same file unless redirected) and compact
     immediately: torn tail bytes vanish and recovery stays bounded. *)
  let journal_path = Option.value journal ~default:path in
  let j =
    {
      path = journal_path;
      oc = open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path;
      events_since_snapshot = 0;
      checkpoint_every = max 1 header.h_checkpoint_every;
    }
  in
  t.journal <- Some j;
  checkpoint t;
  t
