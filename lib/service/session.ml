open Ltc_core
module Fault = Ltc_util.Fault
module B = Serialize.Binary

exception Corrupt_journal of { path : string; message : string }

let corrupt ~path fmt =
  Format.kasprintf
    (fun message -> raise (Corrupt_journal { path; message }))
    fmt

type decision = {
  worker : int;
  assigned : int list;
  answered : int list;
  completed : bool;
  latency : int;
  degraded : bool;
}

type deadline = { budget_s : float; fallback : Ltc_algo.Algorithm.t }

type codec = Text | Binary

let codec_name = function Text -> "text" | Binary -> "binary"

let codec_of_string = function
  | "text" -> Ok Text
  | "binary" -> Ok Binary
  | s -> Error (Printf.sprintf "unknown journal format %S (expected text|binary)" s)

(* Bytes buffered before a forced group commit.  Caps both the window of
   decisions a crash can lose and the size of any single write(2),
   whatever [group_commit] says. *)
let max_group_bytes = 1 lsl 18

(* Binary journals checkpoint by appending a snapshot record (see
   [journal_event]); every Nth such checkpoint falls back to a full
   compaction so the file cannot grow without bound between restores. *)
let compact_after_snapshots = 16

type journal = {
  path : string;
  mutable oc : out_channel;
  mutable events_since_snapshot : int;
  checkpoint_every : int;
  fsync_on_commit : bool;
  codec : codec;
  group_commit : int;  (* records coalesced per write(2)/fsync *)
  group : Buffer.t;  (* encoded but not yet written records *)
  scratch : Buffer.t;
      (* per-record staging for binary framing, reused across records so
         the hot append path allocates no fresh buffer per event *)
  mutable pending : int;  (* record count sitting in [group] *)
  mutable disk_bytes : int;
      (* exact on-disk size, tracked incrementally: every byte reaches
         the file through the header write, [commit_group] or
         compaction, so sizing the journal never costs a flush+lseek on
         the commit path *)
  mutable snapshots_since_compact : int;
  header_bytes : string;
      (* the header is immutable for the life of the journal; rendering
         it once (the embedded instance is thousands of %.17g floats)
         keeps compaction off the printf hot path *)
}

type t = {
  instance : Instance.t;  (* task side only: workers stripped *)
  algorithm : Ltc_algo.Algorithm.t;
  seed : int;
  accept_rate : float option;
  deadline : deadline option;
  policy_rng : Ltc_util.Rng.t;
  noshow_rng : Ltc_util.Rng.t;
  tracker : Ltc_util.Mem.Tracker.t;
  progress : Progress.t;
  decide : Worker.t -> int list;
  fallback_decide : (Worker.t -> int list) option;
  on_decision : decision -> unit;
  mutable arrangement : Arrangement.t;
  mutable consumed : int;
  mutable degraded_total : int;
  mutable journal : journal option;
  mutable closed : bool;
  m_feed : Ltc_util.Metrics.Histogram.t;
  m_bytes : Ltc_util.Metrics.Gauge.t;
  m_snapshots : Ltc_util.Metrics.Counter.t;
  m_retries : Ltc_util.Metrics.Counter.t;
  m_degraded : Ltc_util.Metrics.Counter.t option;
  (* Always-on decide-latency quantiles on the fault clock: virtual time
     when the clock is virtualised (loadgen), wall time otherwise. *)
  feed_hdr : Ltc_util.Metrics.Hdr.t;
}

let fp = Printf.sprintf "%.17g"

let service_metrics name =
  let labels = [ ("algo", name) ] in
  ( Ltc_util.Metrics.histogram ~help:"per-arrival feed latency (s)" ~labels
      "ltc_service_feed_seconds",
    Ltc_util.Metrics.gauge ~help:"journal file size (bytes)" ~labels
      "ltc_service_journal_bytes",
    Ltc_util.Metrics.counter ~help:"journal snapshots written" ~labels
      "ltc_service_snapshots_total",
    Ltc_util.Metrics.counter
      ~help:"transient journal I/O failures retried" ~labels
      "ltc_service_io_retries_total" )

(* The session never reads [instance.workers] (arrivals come from the
   stream), so it holds — and journals — the task side only.  Using the
   stripped instance for the live run too keeps live and restored sessions
   structurally identical. *)
let strip_workers (i : Instance.t) =
  if Array.length i.Instance.workers = 0 then i
  else
    Instance.create ~accuracy:i.Instance.accuracy ~scoring:i.Instance.scoring
      ~candidate_radius:i.Instance.candidate_radius ~tasks:i.Instance.tasks
      ~workers:[||] ~epsilon:i.Instance.epsilon ()

(* Both generators fork off one root so a session is a pure function of
   [seed]: the policy stream feeds seeded policies (Random), the no-show
   stream feeds the accept-rate draws.  Separate streams keep the two
   concerns independent: turning noise on or off never perturbs the
   policy's samples. *)
let derive_rngs ~seed =
  let root = Ltc_util.Rng.create ~seed in
  let policy_rng = Ltc_util.Rng.split root in
  let noshow_rng = Ltc_util.Rng.split root in
  (policy_rng, noshow_rng)

(* ----------------------------------------------------- crash-safe I/O *)

(* All journal writes funnel through here: a named fault site (so the
   chaos harness can tear or fail the write), wrapped in bounded-backoff
   retries for transient errors.  A retried attempt re-probes the site —
   consecutive scripted [Io_error]s therefore exercise multi-retry — and
   is assumed to have written nothing (true for injected faults; the
   torn-suffix/diagnostic paths of [restore] cover real partial
   writes). *)
let guarded_write ~site ~retries oc payload =
  Fault.Retry.with_backoff
    ~on_retry:(fun ~attempt:_ _ -> Ltc_util.Metrics.Counter.incr retries)
    (fun () ->
      match Fault.check_write site ~len:(String.length payload) with
      | None -> output_string oc payload
      | Some n ->
        (* A torn write: persist a strict prefix, make it visible, die. *)
        output_substring oc payload 0 n;
        flush oc;
        Fault.crash site)

let fsync_channel oc =
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

(* Durability of the rename itself: without flushing the directory entry a
   power cut can forget the compaction, resurrecting the pre-compaction
   journal.  Best-effort — not every filesystem lets you fsync a
   directory fd, and a failure here only widens the crash window, it
   never corrupts — but it must not vanish silently either: each failure
   bumps [ltc_service_dir_fsync_errors_total] so operators can see the
   widened window.  The counter registers lazily, on the first failure,
   so healthy runs never list it. *)
let dir_fsync_errors =
  lazy
    (Ltc_util.Metrics.counter
       ~help:"directory fsync failures around journal compaction"
       "ltc_service_dir_fsync_errors_total")

let fsync_dir path =
  let failed () =
    Ltc_util.Metrics.Counter.incr (Lazy.force dir_fsync_errors)
  in
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> failed ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> failed ())

(* ------------------------------------------------------- journal format *)

(* The parsed/emitted journal header.  Text journals keep writing the v2
   header byte-for-byte (old files stay byte-identical on restore);
   binary journals write v3, which inserts a [codec] line right after the
   magic.  [h_version] records what was actually parsed — the writer
   derives the version from [h_codec] alone. *)
type header = {
  h_version : int;
  h_codec : codec;
  h_algorithm : string;
  h_seed : int;
  h_accept_rate : float option;
  h_checkpoint_every : int;
  h_deadline : (float * string) option;
  h_instance : Instance.t;
}

let header_of t ~codec ~checkpoint_every =
  {
    h_version = (match codec with Text -> 2 | Binary -> 3);
    h_codec = codec;
    h_algorithm = t.algorithm.Ltc_algo.Algorithm.name;
    h_seed = t.seed;
    h_accept_rate = t.accept_rate;
    h_checkpoint_every = checkpoint_every;
    h_deadline =
      Option.map
        (fun d -> (d.budget_s, d.fallback.Ltc_algo.Algorithm.name))
        t.deadline;
    h_instance = t.instance;
  }

let write_header sink (h : header) =
  let pf fmt = Printf.ksprintf sink fmt in
  (match h.h_codec with
  | Text -> pf "ltc-journal v2\n"
  | Binary -> pf "ltc-journal v3\ncodec binary\n");
  pf "algorithm %s\n" h.h_algorithm;
  pf "seed %d\n" h.h_seed;
  (match h.h_accept_rate with
  | None -> pf "accept_rate none\n"
  | Some q -> pf "accept_rate %s\n" (fp q));
  pf "checkpoint_every %d\n" h.h_checkpoint_every;
  (match h.h_deadline with
  | None -> pf "deadline none\n"
  | Some (budget_s, fallback) -> pf "deadline %s %s\n" (fp budget_s) fallback);
  Serialize.emit_instance sink h.h_instance

let snapshot_of t =
  {
    B.s_consumed = t.consumed;
    s_policy = Ltc_util.Rng.state t.policy_rng;
    s_noshow = Ltc_util.Rng.state t.noshow_rng;
    s_progress = t.progress;
    s_arrangement = t.arrangement;
  }

let emit_snapshot_text sink (s : B.snapshot) =
  let pf fmt = Printf.ksprintf sink fmt in
  pf "snapshot\n";
  pf "consumed %d\n" s.B.s_consumed;
  pf "rng %Ld %Ld\n" s.B.s_policy s.B.s_noshow;
  Serialize.emit_progress sink s.B.s_progress;
  Serialize.emit_arrangement sink s.B.s_arrangement;
  pf "end-snapshot\n"

(* The trailing "." terminates the record: a torn append never parses as
   a complete decision, so restore re-feeds the arrival instead of
   trusting half a line.  Degraded decisions are tagged "D" so replay can
   force the fallback instead of consulting the (gone) clock. *)
let emit_event_text sink (e : B.event) =
  let pf fmt = Printf.ksprintf sink fmt in
  let w : Worker.t = e.B.e_worker in
  pf "w %d %s %s %s %d\n" w.index
    (fp w.loc.Ltc_geo.Point.x)
    (fp w.loc.Ltc_geo.Point.y)
    (fp w.accuracy) w.capacity;
  pf "%s %d %d%s %d%s .\n"
    (if e.B.e_degraded then "D" else "d")
    w.index
    (List.length e.B.e_assigned)
    (String.concat "" (List.map (Printf.sprintf " %d") e.B.e_assigned))
    (List.length e.B.e_answered)
    (String.concat "" (List.map (Printf.sprintf " %d") e.B.e_answered))

(* Group commit: hand the whole buffered group to one write(2), then (if
   durability is on) one fsync for the lot.  The buffer is cleared only
   after the write succeeds, so a retried [Io_error] re-sends the same
   bytes; a crash mid-group loses the group as one unit — exactly the
   torn suffix [restore] already drops.  The fault sites are the same
   ones the unbatched path used ("journal.append", then
   "journal.append.fsync"), so chaos scripts keep their meaning: with
   [group_commit = 1] the site sequence is identical to the old
   per-event protocol. *)
let commit_group t j =
  if j.pending > 0 then begin
    let payload = Buffer.contents j.group in
    guarded_write ~site:"journal.append" ~retries:t.m_retries j.oc payload;
    Buffer.clear j.group;
    j.pending <- 0;
    flush j.oc;
    if j.fsync_on_commit then begin
      Fault.check "journal.append.fsync";
      Fault.Retry.with_backoff
        ~on_retry:(fun ~attempt:_ _ ->
          Ltc_util.Metrics.Counter.incr t.m_retries)
        (fun () -> fsync_channel j.oc)
    end;
    j.disk_bytes <- j.disk_bytes + String.length payload;
    Ltc_util.Metrics.Gauge.set t.m_bytes (float_of_int j.disk_bytes)
  end

(* Compaction: atomically replace the journal with header + one snapshot
   of the current state.  Recovery work is thereby bounded by
   [checkpoint_every] replayed arrivals regardless of session age.

   Crash safety: the replacement is rendered into a temp file, fsynced,
   renamed over the journal, and the directory entry is fsynced.  A crash
   at any fault site leaves exactly one journal visible — the old one
   (before the rename) or the compacted one (after) — never both, and a
   torn temp file is invisible to [restore] (it opens [path], and stale
   [.tmp] debris is deleted on the next restore). *)
let checkpoint t =
  match t.journal with
  | None -> ()
  | Some j ->
    Ltc_util.Trace.with_span "service:checkpoint" @@ fun () ->
    (* Buffered events become durable before the snapshot that includes
       them replaces the file. *)
    commit_group t j;
    close_out j.oc;
    let tmp = j.path ^ ".tmp" in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf j.header_bytes;
    (match j.codec with
    | Text -> emit_snapshot_text (Buffer.add_string buf) (snapshot_of t)
    | Binary -> B.add_record_frame buf (B.Snapshot (snapshot_of t)));
    let payload = Buffer.contents buf in
    Fault.Retry.with_backoff
      ~on_retry:(fun ~attempt:_ _ -> Ltc_util.Metrics.Counter.incr t.m_retries)
      (fun () ->
        (* Each attempt rewrites the temp file from scratch ([open_out]
           truncates), so a failed try never leaves half an attempt in
           front of a fresh one. *)
        let oc = open_out tmp in
        try
          guarded_write ~site:"journal.checkpoint.write"
            ~retries:t.m_retries oc payload;
          Fault.check "journal.checkpoint.fsync";
          (* The rename below is atomic whether or not the temp file ever
             hits the platters, so process-crash safety never needs the
             fsync — it buys power-loss durability, which is exactly what
             [fsync] opts in to.  The fault sites stay probed either way
             so chaos plans keep their meaning. *)
          if j.fsync_on_commit then fsync_channel oc else flush oc;
          close_out oc
        with e ->
          close_out_noerr oc;
          raise e);
    Fault.check "journal.checkpoint.rename";
    Sys.rename tmp j.path;
    Fault.check "journal.checkpoint.dir";
    if j.fsync_on_commit then fsync_dir j.path;
    j.oc <- open_out_gen [ Open_wronly; Open_append ] 0o644 j.path;
    j.events_since_snapshot <- 0;
    j.snapshots_since_compact <- 0;
    j.disk_bytes <- String.length payload;
    Ltc_util.Metrics.Counter.incr t.m_snapshots;
    Ltc_util.Metrics.Gauge.set t.m_bytes (float_of_int j.disk_bytes)

(* The binary fast path for a periodic checkpoint: the snapshot is just
   another framed record riding the group buffer — one buffered write
   through the usual append fault sites instead of a rewrite + rename of
   the whole file.  The scanners keep only the latest snapshot, so the
   earlier ones become dead weight that the next compaction (every
   [compact_after_snapshots]th checkpoint, any explicit {!checkpoint},
   or {!restore}) sweeps out. *)
(* Frame [record] into the group buffer via the journal's reusable
   scratch (the hot path appends thousands of records; a fresh staging
   buffer per record is measurable allocator traffic). *)
let add_framed j record =
  Buffer.clear j.scratch;
  B.emit_record j.scratch record;
  B.add_frame j.group (Buffer.contents j.scratch)

let append_snapshot t j =
  add_framed j (B.Snapshot (snapshot_of t));
  j.pending <- j.pending + 1;
  j.events_since_snapshot <- 0;
  j.snapshots_since_compact <- j.snapshots_since_compact + 1;
  (* The checkpoint contract: everything up to and including the
     snapshot is committed before the session moves on. *)
  commit_group t j;
  Ltc_util.Metrics.Counter.incr t.m_snapshots

let journal_event t (w : Worker.t) d =
  match t.journal with
  | None -> ()
  | Some j ->
    let e =
      {
        B.e_worker = w;
        e_degraded = d.degraded;
        e_assigned = d.assigned;
        e_answered = d.answered;
      }
    in
    (match j.codec with
    | Text -> emit_event_text (Buffer.add_string j.group) e
    | Binary -> add_framed j (B.Event e));
    j.pending <- j.pending + 1;
    j.events_since_snapshot <- j.events_since_snapshot + 1;
    if j.pending >= j.group_commit || Buffer.length j.group >= max_group_bytes
    then commit_group t j;
    if j.events_since_snapshot >= j.checkpoint_every then
      match j.codec with
      | Text -> checkpoint t
      | Binary ->
        if j.snapshots_since_compact >= compact_after_snapshots - 1 then
          checkpoint t
        else append_snapshot t j

(* ---------------------------------------------------------- construction *)

let make_session ~instance ~algorithm ~seed ~accept_rate ~deadline
    ~on_decision ~policy_rng ~noshow_rng ~progress ~arrangement ~consumed =
  let policy_of (a : Ltc_algo.Algorithm.t) what =
    match a.Ltc_algo.Algorithm.policy with
    | Some p -> p
    | None ->
      invalid_arg
        (Printf.sprintf
           "Session: %s cannot serve %s (offline or release-scheduled \
            algorithm)"
           a.Ltc_algo.Algorithm.name what)
  in
  let policy = policy_of algorithm "an arrival stream" in
  (match deadline with
  | None -> ()
  | Some d ->
    if d.budget_s <= 0.0 then
      invalid_arg "Session: deadline budget must be > 0";
    let (_ : Ltc_util.Rng.t -> Ltc_algo.Engine.policy) =
      policy_of d.fallback "as a deadline fallback"
    in
    ());
  let tracker = Ltc_util.Mem.Tracker.create () in
  Ltc_util.Mem.Tracker.set_baseline_words tracker
    (Progress.memory_words progress);
  let decide = policy policy_rng instance tracker progress in
  (* The fallback shares progress/tracker and the policy stream, so a
     degraded decision is exactly what the fallback algorithm would have
     produced standalone given the same progress state. *)
  let fallback_decide =
    Option.map
      (fun d ->
        (policy_of d.fallback "as a deadline fallback") policy_rng instance
          tracker progress)
      deadline
  in
  let m_feed, m_bytes, m_snapshots, m_retries =
    service_metrics algorithm.Ltc_algo.Algorithm.name
  in
  let m_degraded =
    Option.map
      (fun d ->
        Ltc_algo.Engine.degraded_counter
          algorithm.Ltc_algo.Algorithm.name
          d.fallback.Ltc_algo.Algorithm.name)
      deadline
  in
  {
    instance;
    algorithm;
    seed;
    accept_rate;
    deadline;
    policy_rng;
    noshow_rng;
    tracker;
    progress;
    decide;
    fallback_decide;
    on_decision;
    arrangement;
    consumed;
    degraded_total = 0;
    journal = None;
    closed = false;
    m_feed;
    m_bytes;
    m_snapshots;
    m_retries;
    m_degraded;
    feed_hdr = Ltc_util.Metrics.Hdr.create ();
  }

let validate_accept_rate = function
  | Some q when q <= 0.0 || q > 1.0 ->
    invalid_arg "Session.create: accept_rate must be in (0, 1]"
  | _ -> ()

let attach_journal t ~path ~checkpoint_every ~fsync ~codec ~group_commit =
  let oc = open_out_bin path in
  let buf = Buffer.create 1024 in
  write_header (Buffer.add_string buf) (header_of t ~codec ~checkpoint_every);
  let j =
    {
      path;
      oc;
      events_since_snapshot = 0;
      checkpoint_every;
      fsync_on_commit = fsync;
      codec;
      group_commit;
      group = Buffer.create 4096;
      scratch = Buffer.create 256;
      pending = 0;
      disk_bytes = 0;
      snapshots_since_compact = 0;
      header_bytes = Buffer.contents buf;
    }
  in
  t.journal <- Some j;
  (* A plain (never torn) site: a crash here leaves the freshly-truncated
     file empty, which {!is_empty_journal} classifies as "no session yet"
     — so create-time crashes need no header-recovery logic anywhere. *)
  Fault.Retry.with_backoff
    ~on_retry:(fun ~attempt:_ _ -> Ltc_util.Metrics.Counter.incr t.m_retries)
    (fun () -> Fault.check "journal.header");
  output_string oc (Buffer.contents buf);
  flush oc;
  j.disk_bytes <- String.length j.header_bytes;
  Ltc_util.Metrics.Gauge.set t.m_bytes (float_of_int j.disk_bytes)

let create ?accept_rate ?deadline ?(on_decision = fun _ -> ()) ?journal
    ?(checkpoint_every = 256) ?(fsync = false) ?(format = Text)
    ?(group_commit = 1) ~algorithm ~seed instance =
  validate_accept_rate accept_rate;
  if checkpoint_every < 1 then
    invalid_arg "Session.create: checkpoint_every must be >= 1";
  if group_commit < 1 then
    invalid_arg "Session.create: group_commit must be >= 1";
  let instance = strip_workers instance in
  let policy_rng, noshow_rng = derive_rngs ~seed in
  let progress =
    Progress.create_per_task ~thresholds:(Instance.thresholds instance)
  in
  let t =
    make_session ~instance ~algorithm ~seed ~accept_rate ~deadline
      ~on_decision ~policy_rng ~noshow_rng ~progress
      ~arrangement:Arrangement.empty ~consumed:0
  in
  (match journal with
  | None -> ()
  | Some path ->
    attach_journal t ~path ~checkpoint_every ~fsync ~codec:format
      ~group_commit);
  t

(* ----------------------------------------------------------------- feed *)

let completed t = Progress.all_complete t.progress
let consumed t = t.consumed
let latency t = Arrangement.latency t.arrangement
let arrangement t = t.arrangement
let algorithm_name t = t.algorithm.Ltc_algo.Algorithm.name
let degraded_total t = t.degraded_total

let rng_states t =
  (Ltc_util.Rng.state t.policy_rng, Ltc_util.Rng.state t.noshow_rng)

let feed_hdr t = t.feed_hdr

let journal_bytes t =
  match t.journal with
  | Some j when not t.closed -> j.disk_bytes
  | Some _ | None -> 0

let peak_memory_mb t = Ltc_util.Mem.Tracker.high_water_mb t.tracker

(* [replay = Some degraded] re-executes a journaled event: the primary
   always runs (it consumed its RNG draws in the original timeline), and
   the journal — not the clock — decides whether the fallback overrode
   it.  [replay = None] is a live arrival deciding against the clock. *)
let feed_mode t ~replay (w : Worker.t) =
  if t.closed then invalid_arg "Session.feed: session is closed";
  if completed t then
    (* Engine parity: the batch loop stops before consuming the arrival
       that follows completion, so a finished session acknowledges further
       workers without consuming capacity, RNG draws or journal space. *)
    {
      worker = w.index;
      assigned = [];
      answered = [];
      completed = true;
      latency = latency t;
      degraded = false;
    }
  else begin
    if w.index <> t.consumed + 1 then
      invalid_arg
        (Printf.sprintf "Session.feed: expected arrival %d, got %d"
           (t.consumed + 1) w.index);
    let timing = Ltc_util.Metrics.enabled () in
    let t0 = if timing then Some (Ltc_util.Timer.start ()) else None in
    let clock0 = Fault.Clock.now_s () in
    let assigned, degraded =
      match t.deadline with
      | None ->
        let tasks = t.decide w in
        (* Probed even without a deadline so a scripted [Delay] merely
           advances the virtual clock: the fault is observed (and counted)
           but cannot change the decision stream. *)
        if replay = None then Fault.check "session.decide";
        (tasks, false)
      | Some dl -> (
        match replay with
        | Some forced ->
          let primary = t.decide w in
          if forced then ((Option.get t.fallback_decide) w, true)
          else (primary, false)
        | None ->
          let c0 = Fault.Clock.now_s () in
          let primary = t.decide w in
          Fault.check "session.decide";
          let dt = Float.max 0.0 (Fault.Clock.now_s () -. c0) in
          if dt > dl.budget_s then begin
            Logs.debug ~src:Ltc_util.Log.obs (fun m ->
                m "%s: arrival %d blew the %.6fs budget (%.6fs); %s decides"
                  t.algorithm.Ltc_algo.Algorithm.name w.index dl.budget_s dt
                  dl.fallback.Ltc_algo.Algorithm.name);
            ((Option.get t.fallback_decide) w, true)
          end
          else (primary, false))
    in
    if degraded then begin
      t.degraded_total <- t.degraded_total + 1;
      Option.iter Ltc_util.Metrics.Counter.incr t.m_degraded
    end;
    (* Replays re-run decisions outside their original timeline, so only
       live arrivals contribute quantile samples. *)
    if replay = None then
      Ltc_util.Metrics.Hdr.observe t.feed_hdr
        (Float.max 0.0 (Fault.Clock.now_s () -. clock0));
    Ltc_algo.Engine.check_decisions t.instance w assigned;
    t.consumed <- t.consumed + 1;
    let answered_rev = ref [] in
    (* Same gating as Engine.run: one bernoulli draw per assigned task, in
       assignment order, whether or not earlier draws failed. *)
    List.iter
      (fun task ->
        let ok =
          match t.accept_rate with
          | None -> true
          | Some q -> Ltc_util.Rng.bernoulli t.noshow_rng q
        in
        if ok then begin
          Progress.record t.progress ~task
            ~score:(Instance.score t.instance w task);
          t.arrangement <- Arrangement.add t.arrangement ~worker:w.index ~task;
          answered_rev := task :: !answered_rev
        end)
      assigned;
    let d =
      {
        worker = w.index;
        assigned;
        answered = List.rev !answered_rev;
        completed = completed t;
        latency = latency t;
        degraded;
      }
    in
    (* The hook fires before the journal write on purpose: a crash inside
       the append then loses the record but not the (deterministically
       reproducible) decision, which is how the chaos harness accounts
       for every arrival across incarnations. *)
    t.on_decision d;
    journal_event t w d;
    (match t0 with
    | Some t0 ->
      Ltc_util.Metrics.Histogram.observe t.m_feed (Ltc_util.Timer.elapsed_s t0)
    | None -> ());
    d
  end

let feed t w = feed_mode t ~replay:None w

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.journal with
    | None -> ()
    | Some j ->
      commit_group t j;
      flush j.oc;
      close_out j.oc
  end

(* -------------------------------------------------------------- restore *)

let parse_header ~path src =
  let line_no () = Serialize.line_number src in
  let expect what =
    match Serialize.next_line_opt src with
    | Some line -> line
    | None -> corrupt ~path "truncated header: expected %s" what
  in
  let version =
    match expect "the journal magic" with
    | "ltc-journal v1" -> 1
    | "ltc-journal v2" -> 2
    | "ltc-journal v3" -> 3
    | other -> corrupt ~path "bad journal header %S" other
  in
  let h_codec =
    (* v1/v2 predate the codec line and are implicitly text; v3 names
       its codec right after the magic. *)
    if version < 3 then Text
    else
      match Serialize.fields (expect "a codec line") with
      | [ "codec"; "text" ] -> Text
      | [ "codec"; "binary" ] -> Binary
      | _ ->
        corrupt ~path "line %d: expected 'codec text|binary'" (line_no ())
  in
  let h_algorithm =
    match Serialize.fields (expect "an algorithm line") with
    | [ "algorithm"; name ] -> name
    | _ -> corrupt ~path "line %d: expected 'algorithm <name>'" (line_no ())
  in
  let h_seed =
    match Serialize.fields (expect "a seed line") with
    | [ "seed"; s ] -> Serialize.int_field src s
    | _ -> corrupt ~path "line %d: expected 'seed <int>'" (line_no ())
  in
  let h_accept_rate =
    match Serialize.fields (expect "an accept_rate line") with
    | [ "accept_rate"; "none" ] -> None
    | [ "accept_rate"; q ] -> Some (Serialize.float_field src q)
    | _ ->
      corrupt ~path "line %d: expected 'accept_rate none|<float>'" (line_no ())
  in
  let h_checkpoint_every =
    match Serialize.fields (expect "a checkpoint_every line") with
    | [ "checkpoint_every"; n ] -> Serialize.int_field src n
    | _ ->
      corrupt ~path "line %d: expected 'checkpoint_every <int>'" (line_no ())
  in
  let h_deadline =
    (* v1 journals predate deadlines; their sessions never degrade. *)
    if version < 2 then None
    else
      match Serialize.fields (expect "a deadline line") with
      | [ "deadline"; "none" ] -> None
      | [ "deadline"; budget; fallback ] ->
        Some (Serialize.float_field src budget, fallback)
      | _ ->
        corrupt ~path "line %d: expected 'deadline none|<float> <name>'"
          (line_no ())
  in
  let h_instance = Serialize.parse_instance src in
  {
    h_version = version;
    h_codec;
    h_algorithm;
    h_seed;
    h_accept_rate;
    h_checkpoint_every;
    h_deadline;
    h_instance;
  }

(* Scan the event tail.  Anything after the last complete record —
   a torn arrival or decision line, a half-written snapshot — is treated
   as lost to the crash and dropped; the stream replays it on resume.
   A broken record with intact records *after* it is a different story:
   that is interior corruption (bit rot, concurrent writers, manual
   edits), and silently dropping everything from the damage onwards would
   amputate acknowledged state — so it fails loudly, naming the byte
   offset, line and record index of the damage. *)
exception Torn_tail

let parse_snapshot src =
  let fail () = raise Torn_tail in
  let next () =
    match Serialize.next_line_opt src with Some l -> l | None -> fail ()
  in
  let s_consumed =
    match Serialize.fields (next ()) with
    | [ "consumed"; n ] -> (
      match int_of_string_opt n with Some n -> n | None -> fail ())
    | _ -> fail ()
  in
  let s_policy, s_noshow =
    match Serialize.fields (next ()) with
    | [ "rng"; p; q ] -> (
      match (Int64.of_string_opt p, Int64.of_string_opt q) with
      | Some p, Some q -> (p, q)
      | _ -> fail ())
    | _ -> fail ()
  in
  let s_progress =
    try Serialize.parse_progress src
    with Serialize.Parse_error _ -> fail ()
  in
  let s_arrangement =
    try Serialize.parse_arrangement src
    with Serialize.Parse_error _ -> fail ()
  in
  (match Serialize.next_line_opt src with
  | Some "end-snapshot" -> ()
  | Some _ | None -> fail ());
  { B.s_consumed; s_policy; s_noshow; s_progress; s_arrangement }

let parse_arrival_fields src rest =
  match rest with
  | [ index; x; y; accuracy; capacity ] -> (
    try
      Worker.make
        ~index:(Serialize.int_field src index)
        ~loc:
          (Ltc_geo.Point.make
             ~x:(Serialize.float_field src x)
             ~y:(Serialize.float_field src y))
        ~accuracy:(Serialize.float_field src accuracy)
        ~capacity:(Serialize.int_field src capacity)
    with Serialize.Parse_error _ | Invalid_argument _ -> raise Torn_tail)
  | _ -> raise Torn_tail

let parse_decision_fields (w : Worker.t) rest =
  let int s =
    match int_of_string_opt s with Some i -> i | None -> raise Torn_tail
  in
  let rec take k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | x :: rest -> take (k - 1) (int x :: acc) rest
    | [] -> raise Torn_tail
  in
  match rest with
  | index :: k :: rest ->
    if int index <> w.index then raise Torn_tail;
    let assigned, rest = take (int k) [] rest in
    (match rest with
    | m :: rest ->
      let answered, rest = take (int m) [] rest in
      if rest <> [ "." ] then raise Torn_tail;
      (assigned, answered)
    | [] -> raise Torn_tail)
  | _ -> raise Torn_tail

(* The offending bytes for an interior-corruption report, re-read from
   disk by offset (the scanning source cannot rewind). *)
let excerpt_at ~path ~offset =
  try
    In_channel.with_open_bin path (fun ic ->
        In_channel.seek ic (Int64.of_int offset);
        let buf = Bytes.create 60 in
        let n = In_channel.input ic buf 0 60 in
        let s = Bytes.sub_string buf 0 (max 0 n) in
        match String.index_opt s '\n' with
        | Some i -> String.sub s 0 i
        | None -> s)
  with Sys_error _ -> "<unreadable>"

(* One pass over a text journal body: every complete record in order,
   tagged with the byte offset of its first line.  Stops silently at a
   torn suffix; raises {!Corrupt_journal} on interior damage. *)
let scan_text ~path src =
  let items = ref [] in
  let records = ref 0 in
  let torn_at = ref None in
  (try
     let continue = ref true in
     while !continue do
       match Serialize.next_line_opt src with
       | None -> continue := false
       | Some line -> (
         incr records;
         let offset = Serialize.line_offset src in
         match
           match Serialize.fields line with
           | [ "snapshot" ] ->
             let s = parse_snapshot src in
             items := (B.Snapshot s, offset) :: !items
           | "w" :: rest -> (
             let w = parse_arrival_fields src rest in
             match Serialize.next_line_opt src with
             | Some dline -> (
               match Serialize.fields dline with
               | ("d" | "D") :: drest ->
                 let degraded = String.length dline > 0 && dline.[0] = 'D' in
                 let assigned, answered = parse_decision_fields w drest in
                 items :=
                   ( B.Event
                       {
                         B.e_worker = w;
                         e_degraded = degraded;
                         e_assigned = assigned;
                         e_answered = answered;
                       },
                     offset )
                   :: !items
               | _ -> raise Torn_tail)
             | None ->
               (* Arrival journaled, decision lost: the arrival was never
                  fully processed — drop it, the stream re-feeds it. *)
               raise Torn_tail)
           | _ -> raise Torn_tail
         with
         | () -> ()
         | exception Torn_tail ->
           (* Where did the record break?  If intact content follows, the
              damage is interior, not a torn suffix. *)
           let fail_line = Serialize.line_number src in
           let fail_offset = Serialize.line_offset src in
           (match Serialize.next_line_opt src with
           | None ->
             torn_at := Some offset;
             raise Torn_tail
           | Some _ ->
             corrupt ~path
               "corrupted record %d at byte %d (line %d): unparseable %S \
                followed by intact records — refusing to drop acknowledged \
                state"
               !records fail_offset fail_line
               (excerpt_at ~path ~offset:fail_offset)))
     done
   with Torn_tail -> ());
  (List.rev !items, !torn_at)

(* Same pass over a binary journal body: framed records streamed straight
   off the channel, no line splitting.  The CRC does the triage work the
   text scanner gets from its record grammar — an incomplete frame can
   only sit at end of file ([B.Torn]: expected crash damage, dropped),
   while a complete frame with wrong bytes, or a CRC-valid frame that
   fails to decode, is interior corruption wherever it sits. *)
let scan_binary ~path ic =
  let items = ref [] in
  let records = ref 0 in
  let torn_at = ref None in
  let continue = ref true in
  while !continue do
    let offset = pos_in ic in
    match B.input_frame ic with
    | B.Eof -> continue := false
    | B.Torn ->
      torn_at := Some offset;
      continue := false
    | B.Invalid reason ->
      corrupt ~path
        "corrupted record %d at byte %d: %s — refusing to drop acknowledged \
         state"
        (!records + 1) offset reason
    | B.Frame payload -> (
      incr records;
      match B.record_of_payload payload with
      | record -> items := (record, offset) :: !items
      | exception Serialize.Parse_error { message; _ } ->
        corrupt ~path
          "corrupted record %d at byte %d: CRC-valid frame fails to decode \
           (%s)"
          !records offset message)
  done;
  (List.rev !items, !torn_at)

(* [src] must wrap [ic]: the text scanner consumes lines through it, the
   binary scanner picks up the raw channel exactly where the (always
   line-oriented) header parse left it. *)
let scan_items ~path ~codec ic src =
  match codec with Text -> scan_text ~path src | Binary -> scan_binary ~path ic

(* Latest snapshot wins; events after it form the replay tail. *)
let collapse items =
  let best, tail_rev =
    List.fold_left
      (fun (best, tail) (record, _offset) ->
        match record with
        | B.Snapshot s -> (Some s, [])
        | B.Event e -> (best, e :: tail))
      (None, []) items
  in
  (best, List.rev tail_rev)

let is_empty_journal path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> in_channel_length ic = 0)

let restore ?(on_decision = fun _ -> ()) ?journal ?(fsync = false)
    ?(group_commit = 1) ~path () =
  Ltc_util.Trace.with_span "service:restore" @@ fun () ->
  (* Stale compaction debris: a crash between writing [path.tmp] and the
     rename leaves the temp file next to the journal.  It is dead weight —
     possibly torn — and deleting it up front guarantees no later step can
     confuse the two. *)
  (let tmp = path ^ ".tmp" in
   if Sys.file_exists tmp then try Sys.remove tmp with Sys_error _ -> ());
  let header, snapshot, tail =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let src = Serialize.source_of_channel ic in
        let header =
          try parse_header ~path src
          with Serialize.Parse_error { line; message } ->
            corrupt ~path "line %d: %s" line message
        in
        let items, _torn_at = scan_items ~path ~codec:header.h_codec ic src in
        let snapshot, tail = collapse items in
        (header, snapshot, tail))
  in
  let algorithm =
    match Ltc_algo.Algorithm.find_opt header.h_algorithm with
    | Some a -> a
    | None -> corrupt ~path "unknown algorithm %S" header.h_algorithm
  in
  let deadline =
    Option.map
      (fun (budget_s, name) ->
        match Ltc_algo.Algorithm.find_opt name with
        | Some fallback -> { budget_s; fallback }
        | None -> corrupt ~path "unknown fallback algorithm %S" name)
      header.h_deadline
  in
  (if deadline = None then
     match List.find_opt (fun (e : B.event) -> e.B.e_degraded) tail with
     | Some e ->
       let w : Worker.t = e.B.e_worker in
       corrupt ~path
         "arrival %d was decided by a deadline fallback but the header \
          configures no deadline"
         w.index
     | None -> ());
  let instance = header.h_instance in
  let policy_rng, noshow_rng, progress, arrangement, consumed =
    match snapshot with
    | None ->
      let policy_rng, noshow_rng = derive_rngs ~seed:header.h_seed in
      let progress =
        Progress.create_per_task ~thresholds:(Instance.thresholds instance)
      in
      (policy_rng, noshow_rng, progress, Arrangement.empty, 0)
    | Some s ->
      if Progress.n_tasks s.B.s_progress <> Instance.task_count instance then
        corrupt ~path "snapshot progress does not match the instance";
      ( Ltc_util.Rng.of_state s.B.s_policy,
        Ltc_util.Rng.of_state s.B.s_noshow,
        s.B.s_progress,
        s.B.s_arrangement,
        s.B.s_consumed )
  in
  let t =
    try
      make_session ~instance ~algorithm ~seed:header.h_seed
        ~accept_rate:header.h_accept_rate ~deadline ~on_decision ~policy_rng
        ~noshow_rng ~progress ~arrangement ~consumed
    with Invalid_argument m -> corrupt ~path "%s" m
  in
  (* Replay the tail by re-running the policy — required to advance the
     policy/no-show streams exactly as the original run did — and verify
     the recomputed decisions against the journaled ones: a divergence
     means the journal does not describe this code/instance and silently
     continuing would corrupt the run.  Degraded events force the
     fallback (the journal, not the clock, is the record of what
     happened). *)
  List.iter
    (fun (e : B.event) ->
      let w : Worker.t = e.B.e_worker in
      let d =
        try feed_mode t ~replay:(Some e.B.e_degraded) w
        with
        | Invalid_argument m | Ltc_algo.Engine.Invalid_decision m ->
          corrupt ~path "replaying arrival %d: %s" w.index m
      in
      if d.assigned <> e.B.e_assigned || d.answered <> e.B.e_answered then
        corrupt ~path
          "replayed decision for arrival %d diverges from the journal"
          w.index)
    tail;
  (* Re-attach the journal (same file unless redirected, same codec as
     the source) and compact immediately: torn tail bytes vanish and
     recovery stays bounded. *)
  let journal_path = Option.value journal ~default:path in
  let header_bytes =
    let buf = Buffer.create 1024 in
    write_header (Buffer.add_string buf)
      { header with h_checkpoint_every = max 1 header.h_checkpoint_every };
    Buffer.contents buf
  in
  let j =
    {
      path = journal_path;
      oc =
        open_out_gen
          [ Open_wronly; Open_append; Open_creat; Open_binary ]
          0o644 path;
      events_since_snapshot = 0;
      checkpoint_every = max 1 header.h_checkpoint_every;
      fsync_on_commit = fsync;
      codec = header.h_codec;
      group_commit = max 1 group_commit;
      group = Buffer.create 4096;
      scratch = Buffer.create 256;
      pending = 0;
      disk_bytes = 0;
      snapshots_since_compact = 0;
      header_bytes;
    }
  in
  t.journal <- Some j;
  (* [checkpoint] compacts and sets [disk_bytes] from the fresh image, so
     the zero initialisation above never leaks out. *)
  checkpoint t;
  t

(* ------------------------------------------------ offline journal tools *)

module Journal = struct
  type info = {
    version : int;
    codec : codec;
    algorithm : string;
    seed : int;
    accept_rate : float option;
    checkpoint_every : int;
    deadline : (float * string) option;
    tasks : int;
    file_bytes : int;
    torn_bytes : int;
    snapshots : int;
    events : int;
    consumed : int;
    snapshot_offsets : int list;
  }

  (* Header + every complete record in file order (offsets attached).
     Shares the restore scanners, so torn tails are dropped and interior
     corruption raises {!Corrupt_journal} with the same diagnostics. *)
  let read ~path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let src = Serialize.source_of_channel ic in
        let header =
          try parse_header ~path src
          with Serialize.Parse_error { line; message } ->
            corrupt ~path "line %d: %s" line message
        in
        let items, torn_at = scan_items ~path ~codec:header.h_codec ic src in
        (header, items, torn_at))

  let inspect ~path =
    let header, items, torn_at = read ~path in
    let file_bytes =
      In_channel.with_open_bin path (fun ic -> in_channel_length ic)
    in
    let snapshots, events, offsets_rev =
      List.fold_left
        (fun (s, e, offs) (record, offset) ->
          match record with
          | B.Snapshot _ -> (s + 1, e, offset :: offs)
          | B.Event _ -> (s, e + 1, offs))
        (0, 0, []) items
    in
    let best, tail = collapse items in
    let consumed =
      (match best with Some s -> s.B.s_consumed | None -> 0)
      + List.length tail
    in
    {
      version = header.h_version;
      codec = header.h_codec;
      algorithm = header.h_algorithm;
      seed = header.h_seed;
      accept_rate = header.h_accept_rate;
      checkpoint_every = header.h_checkpoint_every;
      deadline = header.h_deadline;
      tasks = Instance.task_count header.h_instance;
      file_bytes;
      torn_bytes =
        (match torn_at with None -> 0 | Some off -> file_bytes - off);
      snapshots;
      events;
      consumed;
      snapshot_offsets = List.rev offsets_rev;
    }

  (* Record-level transcoding: every complete record re-encoded in the
     target codec, order and content preserved — so restore from the
     converted file replays the exact same snapshot + tail and lands on
     the same fingerprint.  A torn tail (already lost to the crash) is
     not carried over; a v1 text source is upgraded to the current
     header on the way through. *)
  let convert ~src ~dst codec =
    let header, items, _torn_at = read ~path:src in
    let buf = Buffer.create 65536 in
    write_header (Buffer.add_string buf)
      { header with h_codec = codec };
    List.iter
      (fun (record, _offset) ->
        match codec with
        | Binary -> B.add_record_frame buf record
        | Text -> (
          match record with
          | B.Snapshot s -> emit_snapshot_text (Buffer.add_string buf) s
          | B.Event e -> emit_event_text (Buffer.add_string buf) e))
      items;
    Out_channel.with_open_bin dst (fun oc ->
        Out_channel.output_string oc (Buffer.contents buf))
end
