(** Restart-budget policy and health accounting for supervised shard
    servers.

    A supervisor owns the {e decisions} of the sharded failure model —
    restart or quarantine, and after what backoff — while
    {!Shard_server} owns the mechanics (lane capture, online
    {!Session.restore}, mailbox re-feed).  Keeping the policy separate
    makes the budget state machine unit-testable without domains or
    journals.

    Per shard, the first [max_restarts] crashes answer
    [`Restart backoff_s] with {!Ltc_util.Fault.Retry.backoff_s}
    exponential backoff (attempt [k] after the [k]-th crash); every
    crash beyond the budget answers [`Quarantine], permanently.  A
    quarantined shard's arrivals must be acknowledged with explicit
    unassigned decisions — never silently dropped, never allowed to hang
    the merge layer.

    Health is surfaced through the {!Ltc_util.Metrics} registry
    ([ltc_shard_restarts_total], [ltc_shard_shed_total],
    [ltc_shard_quarantined]) and through per-instance observers. *)

type overload =
  | Block  (** full mailbox blocks {!Shard_server.feed} (backpressure) *)
  | Shed
      (** full mailbox sheds the arrival: it is acknowledged immediately
          with an unassigned degraded decision and never touches the
          shard *)

val overload_name : overload -> string
(** ["block"] / ["shed"]. *)

val overload_of_string : string -> (overload, string) result

type config = {
  max_restarts : int;
      (** per-shard online restores before quarantine (>= 0; [0] means
          quarantine on the first crash) *)
  backoff : Ltc_util.Fault.Retry.spec;
      (** restart backoff schedule; sleeps go through
          {!Ltc_util.Fault.sleep}, so they are instantaneous under a
          virtual clock *)
  overload : overload;
}

val default : config
(** 3 restarts per shard, {!Ltc_util.Fault.Retry.default} backoff,
    [Block]. *)

type t

val create : shards:int -> config -> t
(** @raise Invalid_argument when [shards < 1] or
    [config.max_restarts < 0]. *)

val on_crash : t -> shard:int -> [ `Restart of float | `Quarantine ]
(** Account one crash of [shard].  [`Restart d]: the caller should back
    off [d] seconds ({!Ltc_util.Fault.sleep}) and restore the shard;
    the restart is already counted (and [ltc_shard_restarts_total]
    bumped).  [`Quarantine]: budget exhausted — the shard is marked
    quarantined (idempotently) and must not be restored.
    @raise Invalid_argument on an unknown shard. *)

val note_shed : t -> unit
(** Count one shed arrival (and bump [ltc_shard_shed_total]). *)

(** {1 Observers} *)

val config : t -> config
val shards : t -> int

val restarts : t -> int
(** Total restarts granted across all shards. *)

val shard_restarts : t -> int array
(** Per-shard restart counts (a copy). *)

val quarantined : t -> int
(** Number of quarantined shards. *)

val is_quarantined : t -> shard:int -> bool
val shed : t -> int

val scope : shard:int -> string
(** The {!Ltc_util.Fault.with_scope} scope name of a shard's domain,
    ["shard<k>"] — also the prefix plans use to target that shard
    ({!Ltc_util.Fault.scope_site}). *)
