type record = {
  seq : int;
  offered_s : float;
  actual_s : float;
  done_s : float;
  latency_s : float;
  assigned : int;
  degraded : bool;
  journal_bytes : int;
}

type t = {
  ring : record array;
  mutable appended : int;  (* total records ever appended *)
}

let dummy =
  {
    seq = 0;
    offered_s = 0.0;
    actual_s = 0.0;
    done_s = 0.0;
    latency_s = 0.0;
    assigned = 0;
    degraded = false;
    journal_bytes = 0;
  }

let create ~capacity =
  if capacity < 1 then
    invalid_arg "Flight_recorder.create: capacity must be >= 1";
  { ring = Array.make capacity dummy; appended = 0 }

let record t r =
  t.ring.(t.appended mod Array.length t.ring) <- r;
  t.appended <- t.appended + 1

let capacity t = Array.length t.ring
let length t = min t.appended (Array.length t.ring)
let total t = t.appended
let dropped t = max 0 (t.appended - Array.length t.ring)

let iter f t =
  let cap = Array.length t.ring in
  let n = length t in
  let first = t.appended - n in
  for i = first to t.appended - 1 do
    f t.ring.(i mod cap)
  done

(* %.9f keeps sub-nanosecond timeline resolution while staying locale- and
   platform-stable (no %g exponent-form variation across libcs). *)
let record_json r =
  Printf.sprintf
    "{\"seq\":%d,\"offered_s\":%.9f,\"actual_s\":%.9f,\"done_s\":%.9f,\"latency_s\":%.9f,\"assigned\":%d,\"degraded\":%b,\"journal_bytes\":%d}"
    r.seq r.offered_s r.actual_s r.done_s r.latency_s r.assigned r.degraded
    r.journal_bytes

let to_ndjson t =
  let buf = Buffer.create 4096 in
  iter
    (fun r ->
      Buffer.add_string buf (record_json r);
      Buffer.add_char buf '\n')
    t;
  Buffer.contents buf

let dump t ~path =
  Out_channel.with_open_text path (fun oc ->
      output_string oc (to_ndjson t))

let to_chrome_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_char buf '[';
  let first = ref true in
  let emit ev =
    if not !first then Buffer.add_string buf ",\n ";
    first := false;
    Buffer.add_string buf ev
  in
  iter
    (fun r ->
      if r.actual_s > r.offered_s then
        emit
          (Printf.sprintf
             "{\"name\":\"queued\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":1,\"args\":{\"seq\":%d}}"
             (r.offered_s *. 1e6)
             ((r.actual_s -. r.offered_s) *. 1e6)
             r.seq);
      emit
        (Printf.sprintf
           "{\"name\":\"decide\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":1,\"args\":{\"seq\":%d,\"assigned\":%d,\"degraded\":%b}}"
           (r.actual_s *. 1e6)
           (Float.max 0.0 (r.done_s -. r.actual_s) *. 1e6)
           r.seq r.assigned r.degraded))
    t;
  Buffer.add_string buf "]\n";
  Buffer.contents buf
