module Fault = Ltc_util.Fault

type report = {
  identical : bool;
  divergence : string option;
  arrivals : int;
  crashes : int;
  restores : int;
  degraded : int;
  stats : Fault.stats;
  baseline : Session.decision array;
  survived : Session.decision array;
}

(* Everything that must survive a kill/restore cycle bit-for-bit. *)
type fingerprint = {
  f_rng : int64 * int64;
  f_consumed : int;
  f_latency : int;
  f_assignments : Ltc_core.Arrangement.assignment list;
}

let fingerprint s =
  {
    f_rng = Session.rng_states s;
    f_consumed = Session.consumed s;
    f_latency = Session.latency s;
    f_assignments = Ltc_core.Arrangement.to_list (Session.arrangement s);
  }

let decision_eq (a : Session.decision) (b : Session.decision) =
  a.worker = b.worker && a.assigned = b.assigned && a.answered = b.answered
  && a.completed = b.completed && a.latency = b.latency
  && a.degraded = b.degraded

let pp_decision (d : Session.decision) =
  Printf.sprintf "{assigned=[%s]; answered=[%s]; completed=%b; latency=%d%s}"
    (String.concat "," (List.map string_of_int d.assigned))
    (String.concat "," (List.map string_of_int d.answered))
    d.completed d.latency
    (if d.degraded then "; degraded" else "")

(* One full pass of the stream.  [record] sees every consuming decision
   (via the session hook, pre-append) and every completion ack (via the
   return value — acks touch neither RNG nor journal and cannot crash). *)
let feed_all ~record session workers =
  let n = Array.length workers in
  let i = ref (Session.consumed !session) in
  while !i < n do
    let d = Session.feed !session workers.(!i) in
    record d;
    incr i
  done

let baseline_run ?accept_rate ?deadline ~plan ~algorithm ~seed instance
    workers =
  let n = Array.length workers in
  let decisions = Array.make n None in
  let record (d : Session.decision) =
    decisions.(d.worker - 1) <- Some d
  in
  (* Delays are the one fault class with a sanctioned effect on decisions
     (deadline degradation), so the baseline keeps them and drops the
     rest: whatever they change, they must change in both runs. *)
  Fault.arm
    (List.filter
       (fun (f : Fault.fault) ->
         match f.action with Fault.Delay _ -> true | _ -> false)
       plan);
  Fault.Clock.set_virtual 0.0;
  let s =
    Session.create ?accept_rate ?deadline ~on_decision:record ~algorithm
      ~seed instance
  in
  feed_all ~record (ref s) workers;
  (Array.map Option.get decisions, fingerprint s)

let chaos_run ?accept_rate ?deadline ?checkpoint_every ?format ?group_commit
    ~max_restores ~plan ~algorithm ~seed ~journal instance workers =
  let n = Array.length workers in
  let decisions = Array.make n None in
  let record (d : Session.decision) =
    decisions.(d.worker - 1) <- Some d
  in
  let crashes = ref 0 in
  let restores = ref 0 in
  Fault.arm plan;
  Fault.Clock.set_virtual 0.0;
  (try Sys.remove journal with Sys_error _ -> ());
  let killed () =
    incr crashes;
    if !crashes > max_restores then
      failwith
        (Printf.sprintf
           "Chaos.run: %d session kills exceed the restore budget %d — \
            the fault plan is not one-shot or recovery is looping"
           !crashes max_restores)
  in
  (* (Re)build a live session after a kill: restore when the journal holds
     a durable header, start fresh when it does not (a create-time crash
     leaves the file empty).  Restores can themselves crash — their
     compaction passes the same fault sites — hence the loop. *)
  let rec obtain () =
    if (not (Sys.file_exists journal)) || Session.is_empty_journal journal
    then
      match
        Session.create ?accept_rate ?deadline ?checkpoint_every ?format
          ?group_commit ~on_decision:record ~journal ~fsync:true ~algorithm
          ~seed instance
      with
      | s -> s
      | exception (Fault.Injected_crash _ | Fault.Injected_io _) ->
        killed ();
        obtain ()
    else
      match
        Session.restore ~on_decision:record ~fsync:true ?group_commit
          ~path:journal ()
      with
      | s ->
        incr restores;
        s
      | exception (Fault.Injected_crash _ | Fault.Injected_io _) ->
        killed ();
        obtain ()
  in
  let session = ref (obtain ()) in
  let continue = ref true in
  while !continue do
    match feed_all ~record session workers with
    | () -> continue := false
    | exception (Fault.Injected_crash _ | Fault.Injected_io _) ->
      killed ();
      session := obtain ()
  done;
  let stats = Fault.stats () in
  Session.close !session;
  (Array.map Option.get decisions, fingerprint !session, !crashes, !restores,
   stats)

let diff_streams baseline survived fp_base fp_chaos =
  let n = Array.length baseline in
  let divergence = ref None in
  let note msg = if !divergence = None then divergence := Some msg in
  for i = 0 to n - 1 do
    if not (decision_eq baseline.(i) survived.(i)) then
      note
        (Printf.sprintf "arrival %d: baseline %s vs survived %s" (i + 1)
           (pp_decision baseline.(i))
           (pp_decision survived.(i)))
  done;
  if fp_base <> fp_chaos then
    note
      (Printf.sprintf
         "final state: consumed %d/%d, latency %d/%d, rng (%Ld,%Ld)/(%Ld,%Ld), \
          %d/%d assignments (baseline/survived)"
         fp_base.f_consumed fp_chaos.f_consumed fp_base.f_latency
         fp_chaos.f_latency (fst fp_base.f_rng) (snd fp_base.f_rng)
         (fst fp_chaos.f_rng) (snd fp_chaos.f_rng)
         (List.length fp_base.f_assignments)
         (List.length fp_chaos.f_assignments));
  !divergence

(* ------------------------------------------------------------- sharded *)

type sharded_report = {
  s_identical : bool;
  s_divergence : string option;
  s_arrivals : int;
  s_shards : int;
  s_restarts : int;
  s_shard_restarts : int array;
  s_quarantined : int;
  s_shed : int;
  s_degraded : int;
  s_stats : Fault.stats;
  s_baseline : Session.decision array;
  s_survived : Session.decision array;
}

(* Per-shard scoped fault plan: each shard gets its own seeded sub-plan
   over its scoped journal sites, so every shard's crash schedule is
   deterministic (the shard domain is the single writer of its scoped hit
   counters) and independent of its siblings.  ["journal.header"] is
   excluded: the initial create is not supervised. *)
let sharded_plan ?(crashes = 1) ?(io_errors = 0) ?(torn_writes = 0)
    ?(delays = 0) ?(horizon = 40) ?delay_s ~seed ~shards () =
  let rng = Ltc_util.Rng.create ~seed in
  List.concat
    (List.init shards (fun k ->
         let scope = Supervisor.scope ~shard:k in
         let s site = Fault.scope_site ~scope site in
         Fault.plan ~crashes ~io_errors ~torn_writes ~delays ~horizon
           ?delay_s
           ~seed:(Ltc_util.Rng.split_seed rng)
           ~sites:
             [
               s "journal.append.fsync";
               s "journal.checkpoint.fsync";
               s "journal.checkpoint.rename";
               s "journal.checkpoint.dir";
             ]
           ~write_sites:[ s "journal.append"; s "journal.checkpoint.write" ]
           ~delay_sites:[ s "session.decide" ]
           ()))

let sharded_fingerprint server =
  ( Shard_server.consumed server,
    Shard_server.latency server,
    Shard_server.completed server,
    Ltc_core.Arrangement.to_list (Shard_server.arrangement server) )

let feed_all_sharded ~record server workers =
  Array.iter
    (fun w -> List.iter record (Shard_server.feed server w))
    workers;
  List.iter record (Shard_server.flush server)

let run_sharded ?accept_rate ?(checkpoint_every = 64) ?format ?group_commit
    ?mailbox ?supervise ~plan ~shards ~algorithm ~seed ~journal
    (instance : Ltc_core.Instance.t) =
  let workers = instance.Ltc_core.Instance.workers in
  if Array.length workers = 0 then
    invalid_arg "Chaos.run_sharded: the instance has no workers to stream";
  let n = Array.length workers in
  let supervise =
    match supervise with
    | Some c -> c
    | None ->
      { Supervisor.default with max_restarts = 10 + List.length plan }
  in
  Fun.protect
    ~finally:(fun () ->
      Fault.disarm ();
      Fault.Clock.clear ())
    (fun () ->
      (* Baseline: the same sharded computation, inline, journal-less and
         unsupervised.  Unscoped, so the scoped plan cannot touch it —
         only [Delay] faults are re-armed, and without a deadline (the
         sharded harness runs deadline-free) they are decision-inert. *)
      let collect run =
        let decisions = Array.make n None in
        let record (d : Session.decision) =
          decisions.(d.worker - 1) <- Some d
        in
        run record;
        Array.mapi
          (fun i d ->
            match d with
            | Some d -> d
            | None ->
              failwith
                (Printf.sprintf
                   "Chaos.run_sharded: arrival %d was never released"
                   (i + 1)))
          decisions
      in
      Fault.arm
        (List.filter
           (fun (f : Fault.fault) ->
             match f.action with Fault.Delay _ -> true | _ -> false)
           plan);
      Fault.Clock.set_virtual 0.0;
      let base_server =
        Shard_server.create ?accept_rate ~checkpoint_every ~mode:Shard_server.Inline
          ~shards ~algorithm ~seed instance
      in
      let baseline =
        collect (fun record -> feed_all_sharded ~record base_server workers)
      in
      let fp_base = sharded_fingerprint base_server in
      Shard_server.close base_server;
      (* Chaos: the supervised concurrent runtime under the full plan. *)
      (try Sys.remove journal with Sys_error _ -> ());
      for k = 0 to shards - 1 do
        try Sys.remove (Printf.sprintf "%s.shard%d" journal k)
        with Sys_error _ -> ()
      done;
      Fault.arm plan;
      Fault.Clock.set_virtual 0.0;
      let server =
        Shard_server.create ?accept_rate ?format ?group_commit ?mailbox
          ~journal ~checkpoint_every ~fsync:true ~mode:Shard_server.Domains ~supervise
          ~shards ~algorithm ~seed instance
      in
      let survived =
        collect (fun record -> feed_all_sharded ~record server workers)
      in
      let fp_chaos = sharded_fingerprint server in
      let stats = Fault.stats () in
      let restarts = Shard_server.restarts server in
      let shard_restarts = Shard_server.shard_restarts server in
      let quarantined = Shard_server.quarantined server in
      let shed = Shard_server.shed server in
      Shard_server.close server;
      let divergence = ref None in
      let note msg = if !divergence = None then divergence := Some msg in
      for i = 0 to n - 1 do
        if not (decision_eq baseline.(i) survived.(i)) then
          note
            (Printf.sprintf "arrival %d: baseline %s vs survived %s" (i + 1)
               (pp_decision baseline.(i))
               (pp_decision survived.(i)))
      done;
      (let c_b, l_b, done_b, a_b = fp_base in
       let c_c, l_c, done_c, a_c = fp_chaos in
       if (c_b, l_b, done_b) <> (c_c, l_c, done_c) || a_b <> a_c then
         note
           (Printf.sprintf
              "final state: consumed %d/%d, latency %d/%d, completed \
               %b/%b, %d/%d assignments (baseline/survived)"
              c_b c_c l_b l_c done_b done_c (List.length a_b)
              (List.length a_c)));
      {
        s_identical = !divergence = None;
        s_divergence = !divergence;
        s_arrivals = n;
        s_shards = shards;
        s_restarts = restarts;
        s_shard_restarts = shard_restarts;
        s_quarantined = quarantined;
        s_shed = shed;
        s_degraded =
          Array.fold_left
            (fun acc (d : Session.decision) ->
              if d.degraded then acc + 1 else acc)
            0 survived;
        s_stats = stats;
        s_baseline = baseline;
        s_survived = survived;
      })

let run ?accept_rate ?deadline ?checkpoint_every ?format ?group_commit
    ?max_restores ~plan ~algorithm ~seed ~journal
    (instance : Ltc_core.Instance.t) =
  let workers = instance.Ltc_core.Instance.workers in
  if Array.length workers = 0 then
    invalid_arg "Chaos.run: the instance has no workers to stream";
  let max_restores =
    match max_restores with
    | Some m -> m
    | None -> 10 + (4 * List.length plan)
  in
  Fun.protect
    ~finally:(fun () ->
      Fault.disarm ();
      Fault.Clock.clear ())
    (fun () ->
      let baseline, fp_base =
        baseline_run ?accept_rate ?deadline ~plan ~algorithm ~seed instance
          workers
      in
      let survived, fp_chaos, crashes, restores, stats =
        chaos_run ?accept_rate ?deadline ?checkpoint_every ?format
          ?group_commit ~max_restores ~plan ~algorithm ~seed ~journal
          instance workers
      in
      let divergence = diff_streams baseline survived fp_base fp_chaos in
      {
        identical = divergence = None;
        divergence;
        arrivals = Array.length workers;
        crashes;
        restores;
        degraded =
          Array.fold_left
            (fun acc (d : Session.decision) ->
              if d.degraded then acc + 1 else acc)
            0 survived;
        stats;
        baseline;
        survived;
      })
