module Instance = Ltc_core.Instance
module Task = Ltc_core.Task
module Worker = Ltc_core.Worker
module Serialize = Ltc_core.Serialize
module Arrangement = Ltc_core.Arrangement

type mode = Inline | Domains

(* ------------------------------------------------------------- partition *)

(* The task plane is cut into grid cells exactly as Grid_index does it
   (same clamped-floor cell formula, cell side = candidate radius), and
   each cell picks its shard by rendezvous hashing: the shard whose mixed
   (cell, shard) hash is largest wins.  Deterministic, stateless, and
   stable under restore — the partition is a pure function of the
   instance's tasks and the shard count. *)
type partition = {
  p_shards : int;
  p_min_x : float;
  p_min_y : float;
  p_cell : float;
  p_cols : int;
  p_rows : int;
}

(* splitmix64 finalizer — the standard 64-bit avalanche mixer. *)
let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let make_partition ~shards (instance : Instance.t) =
  let tasks = instance.Instance.tasks in
  if Array.length tasks = 0 then
    (* No tasks: one degenerate cell; every arrival routes to shard 0. *)
    {
      p_shards = shards;
      p_min_x = 0.0;
      p_min_y = 0.0;
      p_cell = 1.0;
      p_cols = 1;
      p_rows = 1;
    }
  else begin
    let world =
      Ltc_geo.Bbox.of_points
        (Array.to_list (Array.map (fun (t : Task.t) -> t.Task.loc) tasks))
    in
    let cell =
      match instance.Instance.candidate_radius with
      | Some r when r > 0.0 -> r
      | Some _ | None ->
        (* No candidate radius to align cells with: fall back to an 8x8
           grid over the task extent (any positive cell works — without a
           radius there is no shard-local parity guarantee anyway). *)
        Float.max 1e-9
          (Float.max (Ltc_geo.Bbox.width world) (Ltc_geo.Bbox.height world)
          /. 8.0)
    in
    let dim extent =
      max 1 (int_of_float (Float.ceil (extent /. cell)))
    in
    {
      p_shards = shards;
      p_min_x = world.Ltc_geo.Bbox.min_x;
      p_min_y = world.Ltc_geo.Bbox.min_y;
      p_cell = cell;
      p_cols = dim (Ltc_geo.Bbox.width world);
      p_rows = dim (Ltc_geo.Bbox.height world);
    }
  end

let cell_of part (p : Ltc_geo.Point.t) =
  let clampi v lo hi = max lo (min hi v) in
  let cx =
    clampi
      (int_of_float ((p.Ltc_geo.Point.x -. part.p_min_x) /. part.p_cell))
      0 (part.p_cols - 1)
  in
  let cy =
    clampi
      (int_of_float ((p.Ltc_geo.Point.y -. part.p_min_y) /. part.p_cell))
      0 (part.p_rows - 1)
  in
  (cx, cy)

let shard_of_cell part (cx, cy) =
  if part.p_shards = 1 then 0
  else begin
    let base =
      mix64
        (Int64.add
           (Int64.mul (Int64.of_int cx) 0x9e3779b97f4a7c15L)
           (Int64.of_int cy))
    in
    let best = ref 0 in
    let best_h = ref Int64.min_int in
    for k = 0 to part.p_shards - 1 do
      let h = mix64 (Int64.logxor base (Int64.of_int ((k + 1) * 0x632be5ab))) in
      if Int64.compare h !best_h > 0 then begin
        best_h := h;
        best := k
      end
    done;
    !best
  end

(* --------------------------------------------------------- shard state *)

type shard = {
  mutable sh_session : Session.t;  (* replaced online by the supervisor *)
  sh_tasks : int array;  (* local task id -> global task id *)
  (* Shard-local worker-index bookkeeping.  [sh_globals.(l - 1)] is the
     global arrival index behind the shard's local arrival [l]; grown on
     demand (the router is the only writer). *)
  mutable sh_globals : int array;
  mutable sh_local_fed : int;  (* local arrivals routed (live + skipped) *)
  mutable sh_skip : int;  (* restored arrivals still to skip on re-feed *)
  sh_recruited : (int, unit) Hashtbl.t;
      (* local arrival indices that answered in a previous incarnation
         (rebuilt from the restored arrangement; empty on fresh create) *)
  mutable sh_complete : bool;  (* merge-layer view of shard completion *)
  (* --- supervision state (only maintained on a supervised server) --- *)
  mutable sh_arrivals : Worker.t option array;
      (* original arrival behind each routed local index, retained so a
         restored shard can be re-fed what its mailbox lost *)
  sh_captured : Session.decision option ref;
      (* last decision the session made, written pre-append via the
         [on_decision] hook: covers the one arrival whose append became
         durable but whose merge insert a crash interrupted *)
  mutable sh_decided : int;
      (* highest local index with a merge-layer entry (under [t_cmutex]) *)
  mutable sh_quarantined : bool;
}

type entry =
  | P_dec of int * Session.decision  (* shard, shard-local decision *)
  | P_skip of int * int  (* shard, local arrival index *)
  | P_ack  (* arrival fed after global completion: acknowledge only *)
  | P_dead of int
      (* shard; arrival shed or owned by a quarantined shard — released
         as an explicit unassigned degraded ack so the merge layer never
         hangs on a dead shard *)

type msg = { mg : int; mq : bool; mw : Worker.t }
(* [mq] — quiet: a supervised re-feed of an arrival whose decision is
   already merged; the session must re-consume it (to advance its state
   deterministically) but no merge entry is inserted. *)

type t = {
  t_mode : mode;
  t_part : partition;
  t_shards : shard array;
  t_algorithm : string;
  t_resumed_at : int;
  (* Merge layer.  [t_cmutex] guards [t_pending] (shard domains insert,
     the caller releases); every other mutable field is owned by the
     calling thread. *)
  t_cmutex : Mutex.t;
  t_pending : (int, entry) Hashtbl.t;
  mutable t_next_emit : int;  (* next global index to release *)
  mutable t_fed : int;  (* global arrivals accepted by [feed] *)
  mutable t_consumed : int;
  mutable t_replayed : int;
  mutable t_latency : int;
  mutable t_incomplete : int;  (* shards not yet complete *)
  mutable t_pool : msg Ltc_util.Pool.Workers.t option;
  mutable t_closed : bool;
  (* --- supervision --- *)
  t_super : Supervisor.t option;
  t_journal : string option;  (* manifest/base path *)
  t_fsync : bool;
  t_group_commit : int;
  t_fresh : int -> Session.t;
      (* fresh supervised session for shard [k] — the recovery fallback
         when a shard journal vanished or never became durable *)
}

let shards t = t.t_part.p_shards
let mode t = t.t_mode
let algorithm_name t = t.t_algorithm
let consumed t = t.t_consumed
let resumed_at t = t.t_resumed_at
let replayed t = t.t_replayed
let completed t = t.t_incomplete = 0
let latency t = t.t_latency
let shard_of_point t loc = shard_of_cell t.t_part (cell_of t.t_part loc)

let stalls t =
  match t.t_pool with
  | None -> 0
  | Some pool -> Ltc_util.Pool.Workers.stalls pool

let supervised t = t.t_super <> None
let restarts t = match t.t_super with None -> 0 | Some s -> Supervisor.restarts s

let shard_restarts t =
  match t.t_super with
  | None -> Array.make (Array.length t.t_shards) 0
  | Some s -> Supervisor.shard_restarts s

let quarantined t =
  match t.t_super with None -> 0 | Some s -> Supervisor.quarantined s

let shed t = match t.t_super with None -> 0 | Some s -> Supervisor.shed s

let degraded_total t =
  Array.fold_left
    (fun acc sh -> acc + Session.degraded_total sh.sh_session)
    0 t.t_shards

let shard_consumed t =
  Array.map (fun sh -> Session.consumed sh.sh_session) t.t_shards

let shard_task_counts t =
  Array.map (fun sh -> Array.length sh.sh_tasks) t.t_shards

let per_shard_hdr t =
  Array.map (fun sh -> Session.feed_hdr sh.sh_session) t.t_shards

let merged_hdr t =
  let into = Ltc_util.Metrics.Hdr.create () in
  Array.iter
    (fun sh -> Ltc_util.Metrics.Hdr.merge ~into (Session.feed_hdr sh.sh_session))
    t.t_shards;
  into

let journal_bytes t =
  Array.fold_left
    (fun acc sh -> acc + Session.journal_bytes sh.sh_session)
    0 t.t_shards

let arrangement t =
  (* Per-shard arrangements carry local worker indices and local task
     ids; mapping both and stably sorting by global arrival index
     reconstructs exactly the insertion order an un-sharded session would
     have used (each arrival lands on one shard, and within an arrival
     the shard preserved policy order). *)
  let entries =
    Array.to_list t.t_shards
    |> List.concat_map (fun sh ->
           List.map
             (fun (a : Arrangement.assignment) ->
               (sh.sh_globals.(a.Arrangement.worker - 1),
                sh.sh_tasks.(a.Arrangement.task)))
             (Arrangement.to_list (Session.arrangement sh.sh_session)))
  in
  let entries =
    List.stable_sort (fun (g1, _) (g2, _) -> compare g1 g2) entries
  in
  List.fold_left
    (fun acc (worker, task) -> Arrangement.add acc ~worker ~task)
    Arrangement.empty entries

(* ------------------------------------------------------------- manifest *)

let manifest_magic = "ltc-shard-manifest v1"

let is_manifest path =
  Sys.file_exists path
  && (not (Sys.is_directory path))
  &&
  match In_channel.with_open_text path In_channel.input_line with
  | Some line -> String.trim line = manifest_magic
  | None -> false

type manifest = {
  mf_shards : int;
  mf_mailbox : int;
  mf_algorithm : string;
  mf_seed : int;
  mf_accept_rate : float option;
  mf_checkpoint_every : int;
  mf_fsync : bool;
  mf_format : Session.codec;
  mf_group_commit : int;
  mf_deadline : (float * string) option;
  mf_instance : Instance.t;
}

let strip_workers (i : Instance.t) =
  if Array.length i.Instance.workers = 0 then i
  else
    Instance.create ~accuracy:i.Instance.accuracy ~scoring:i.Instance.scoring
      ~candidate_radius:i.Instance.candidate_radius ~tasks:i.Instance.tasks
      ~workers:[||] ~epsilon:i.Instance.epsilon ()

let write_manifest ~path (m : manifest) =
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_text tmp (fun oc ->
      let out s = Out_channel.output_string oc s in
      out manifest_magic;
      out "\n";
      out (Printf.sprintf "shards %d\n" m.mf_shards);
      out (Printf.sprintf "mailbox %d\n" m.mf_mailbox);
      out (Printf.sprintf "algorithm %s\n" m.mf_algorithm);
      out (Printf.sprintf "seed %d\n" m.mf_seed);
      (match m.mf_accept_rate with
      | None -> out "accept_rate none\n"
      | Some q -> out (Printf.sprintf "accept_rate %.17g\n" q));
      out (Printf.sprintf "checkpoint_every %d\n" m.mf_checkpoint_every);
      out (Printf.sprintf "fsync %d\n" (if m.mf_fsync then 1 else 0));
      out (Printf.sprintf "codec %s\n" (Session.codec_name m.mf_format));
      out (Printf.sprintf "group_commit %d\n" m.mf_group_commit);
      (match m.mf_deadline with
      | None -> out "deadline none\n"
      | Some (budget_s, fallback) ->
        out (Printf.sprintf "deadline %.17g %s\n" budget_s fallback));
      Serialize.emit_instance out m.mf_instance);
  Sys.rename tmp path

let manifest_error src msg =
  raise
    (Serialize.Parse_error
       { line = Serialize.line_number src; message = msg })

let expect_field src key =
  let line = Serialize.next_line src in
  match Serialize.fields line with
  | k :: rest when k = key -> rest
  | _ -> manifest_error src (Printf.sprintf "expected %S line" key)

let one_field src key =
  match expect_field src key with
  | [ v ] -> v
  | _ -> manifest_error src (Printf.sprintf "malformed %S line" key)

let read_manifest ~path =
  In_channel.with_open_text path @@ fun ic ->
  let src = Serialize.source_of_channel ic in
  (match Serialize.next_line_opt src with
  | Some line when String.trim line = manifest_magic -> ()
  | Some _ | None ->
    manifest_error src
      (Printf.sprintf "%s is not a shard manifest (missing %S)" path
         manifest_magic));
  let int_of key v =
    match int_of_string_opt v with
    | Some n -> n
    | None -> manifest_error src (Printf.sprintf "bad %s %S" key v)
  in
  let mf_shards = int_of "shards" (one_field src "shards") in
  let mf_mailbox = int_of "mailbox" (one_field src "mailbox") in
  let mf_algorithm = one_field src "algorithm" in
  let mf_seed = int_of "seed" (one_field src "seed") in
  let mf_accept_rate =
    match one_field src "accept_rate" with
    | "none" -> None
    | v -> (
      match float_of_string_opt v with
      | Some q -> Some q
      | None -> manifest_error src (Printf.sprintf "bad accept_rate %S" v))
  in
  let mf_checkpoint_every =
    int_of "checkpoint_every" (one_field src "checkpoint_every")
  in
  let mf_fsync = int_of "fsync" (one_field src "fsync") <> 0 in
  let mf_format =
    match Session.codec_of_string (one_field src "codec") with
    | Ok c -> c
    | Error msg -> manifest_error src msg
  in
  let mf_group_commit = int_of "group_commit" (one_field src "group_commit") in
  let mf_deadline =
    match expect_field src "deadline" with
    | [ "none" ] -> None
    | [ budget; fallback ] -> (
      match float_of_string_opt budget with
      | Some b -> Some (b, fallback)
      | None -> manifest_error src (Printf.sprintf "bad deadline %S" budget))
    | _ -> manifest_error src "malformed \"deadline\" line"
  in
  let mf_instance = Serialize.parse_instance src in
  {
    mf_shards;
    mf_mailbox;
    mf_algorithm;
    mf_seed;
    mf_accept_rate;
    mf_checkpoint_every;
    mf_fsync;
    mf_format;
    mf_group_commit;
    mf_deadline;
    mf_instance;
  }

(* Offline manifest summary for [ltc journal inspect]: the configuration
   lines without the embedded instance. *)
type manifest_info = {
  mi_shards : int;
  mi_mailbox : int;
  mi_algorithm : string;
  mi_seed : int;
  mi_accept_rate : float option;
  mi_checkpoint_every : int;
  mi_fsync : bool;
  mi_format : Session.codec;
  mi_group_commit : int;
  mi_deadline : (float * string) option;
  mi_tasks : int;
}

let manifest_info ~path =
  let m = read_manifest ~path in
  {
    mi_shards = m.mf_shards;
    mi_mailbox = m.mf_mailbox;
    mi_algorithm = m.mf_algorithm;
    mi_seed = m.mf_seed;
    mi_accept_rate = m.mf_accept_rate;
    mi_checkpoint_every = m.mf_checkpoint_every;
    mi_fsync = m.mf_fsync;
    mi_format = m.mf_format;
    mi_group_commit = m.mf_group_commit;
    mi_deadline = m.mf_deadline;
    mi_tasks = Instance.task_count m.mf_instance;
  }

(* -------------------------------------------------------------- building *)

let shard_journal base k = Printf.sprintf "%s.shard%d" base k
let shard_journal_path ~base ~shard = shard_journal base shard

(* Tasks of shard [k], in ascending global id order, renumbered to local
   ids 0.. — order-preserving, so ascending-id tie-breaks inside the
   shard session match the un-sharded session's. *)
let shard_tasks part (instance : Instance.t) k =
  let globals = ref [] in
  Array.iter
    (fun (task : Task.t) ->
      if shard_of_cell part (cell_of part task.Task.loc) = k then
        globals := task.Task.id :: !globals)
    instance.Instance.tasks;
  let globals = Array.of_list (List.rev !globals) in
  let tasks =
    Array.mapi
      (fun local g ->
        let task = instance.Instance.tasks.(g) in
        Task.make ?epsilon:task.Task.epsilon ~id:local ~loc:task.Task.loc ())
      globals
  in
  (globals, tasks)

let sub_instance (instance : Instance.t) tasks =
  Instance.create ~accuracy:instance.Instance.accuracy
    ~scoring:instance.Instance.scoring
    ~candidate_radius:instance.Instance.candidate_radius ~tasks ~workers:[||]
    ~epsilon:instance.Instance.epsilon ()

let shard_seeds ~seed n =
  let rng = Ltc_util.Rng.create ~seed in
  Array.init n (fun _ -> Ltc_util.Rng.split_seed rng)

let make_shard ~session ~tasks_globals ~restored ~supervised ~captured =
  let recruited = Hashtbl.create 16 in
  let skip = if restored then Session.consumed session else 0 in
  if restored then
    List.iter
      (fun (a : Arrangement.assignment) ->
        Hashtbl.replace recruited a.Arrangement.worker ())
      (Arrangement.to_list (Session.arrangement session));
  {
    sh_session = session;
    sh_tasks = tasks_globals;
    sh_globals = Array.make (max 16 skip) 0;
    sh_local_fed = 0;
    sh_skip = skip;
    sh_recruited = recruited;
    sh_complete = Session.completed session;
    sh_arrivals = (if supervised then Array.make (max 16 skip) None else [||]);
    sh_captured = captured;
    sh_decided = 0;
    sh_quarantined = false;
  }

(* Insert a merge entry for a shard-local arrival and advance the shard's
   decided watermark, atomically w.r.t. the merge layer. *)
let add_entry t sh ~local g entry =
  Mutex.lock t.t_cmutex;
  Hashtbl.replace t.t_pending g entry;
  if local > sh.sh_decided then sh.sh_decided <- local;
  Mutex.unlock t.t_cmutex

let attach_pool t ~mailbox =
  match t.t_mode with
  | Inline -> ()
  | Domains ->
    let handler ~lane msg =
      let sh = t.t_shards.(lane) in
      let decide () = Session.feed sh.sh_session msg.mw in
      let d =
        match t.t_super with
        | None -> decide ()
        | Some _ ->
          (* Scoped probing: the lane is the single writer of its
             ["shard<k>/..."] fault counters, so scripted per-shard hits
             are deterministic even with sibling lanes running. *)
          Ltc_util.Fault.with_scope (Supervisor.scope ~shard:lane) decide
      in
      if not msg.mq then
        add_entry t sh ~local:msg.mw.Worker.index msg.mg (P_dec (lane, d))
    in
    t.t_pool <-
      Some
        (Ltc_util.Pool.Workers.create ~lanes:(Array.length t.t_shards)
           ~capacity:mailbox ~handler)

let build ~mode ~mailbox ~part ~algorithm ~super ~journal ~fsync ~group_commit
    ~fresh shards_arr =
  let resumed =
    Array.fold_left (fun acc sh -> acc + sh.sh_skip) 0 shards_arr
  in
  let incomplete =
    Array.fold_left
      (fun acc sh -> acc + if sh.sh_complete then 0 else 1)
      0 shards_arr
  in
  let t =
    {
      t_mode = mode;
      t_part = part;
      t_shards = shards_arr;
      t_algorithm = algorithm;
      t_resumed_at = resumed;
      t_cmutex = Mutex.create ();
      t_pending = Hashtbl.create 64;
      t_next_emit = 1;
      t_fed = 0;
      t_consumed = 0;
      t_replayed = 0;
      t_latency = 0;
      t_incomplete = incomplete;
      t_pool = None;
      t_closed = false;
      t_super = super;
      t_journal = journal;
      t_fsync = fsync;
      t_group_commit = group_commit;
      t_fresh = fresh;
    }
  in
  attach_pool t ~mailbox;
  t

let create ?accept_rate ?deadline ?journal ?(checkpoint_every = 256)
    ?(fsync = false) ?(format = Session.Text) ?(group_commit = 1)
    ?(mailbox = 64) ?(mode = Domains) ?supervise ~shards ~algorithm ~seed
    instance =
  if shards < 1 then
    invalid_arg "Shard_server.create: shards must be >= 1";
  if mailbox < 1 then
    invalid_arg "Shard_server.create: mailbox must be >= 1";
  (match supervise with
  | Some c when c.Supervisor.max_restarts > 0 && journal = None ->
    invalid_arg
      "Shard_server.create: supervision with restarts requires ~journal \
       (restore needs a shard journal; use max_restarts = 0 to \
       quarantine-on-crash without one)"
  | _ -> ());
  let super = Option.map (fun c -> Supervisor.create ~shards c) supervise in
  let captured = Array.init shards (fun _ -> ref None) in
  let hook k =
    match super with
    | None -> None
    | Some _ -> Some (fun d -> captured.(k) := Some d)
  in
  let part = make_partition ~shards instance in
  let seeds = shard_seeds ~seed shards in
  (match journal with
  | None -> ()
  | Some base ->
    write_manifest ~path:base
      {
        mf_shards = shards;
        mf_mailbox = mailbox;
        mf_algorithm = algorithm.Ltc_algo.Algorithm.name;
        mf_seed = seed;
        mf_accept_rate = accept_rate;
        mf_checkpoint_every = checkpoint_every;
        mf_fsync = fsync;
        mf_format = format;
        mf_group_commit = group_commit;
        mf_deadline =
          Option.map
            (fun (dl : Session.deadline) ->
              (dl.Session.budget_s,
               dl.Session.fallback.Ltc_algo.Algorithm.name))
            deadline;
        mf_instance = strip_workers instance;
      });
  let fresh k =
    let _, tasks = shard_tasks part instance k in
    Session.create ?accept_rate ?deadline ?on_decision:(hook k)
      ?journal:(Option.map (fun base -> shard_journal base k) journal)
      ~checkpoint_every ~fsync ~format ~group_commit ~algorithm
      ~seed:seeds.(k)
      (sub_instance instance tasks)
  in
  let shards_arr =
    Array.init shards (fun k ->
        let tasks_globals, _ = shard_tasks part instance k in
        let session = fresh k in
        make_shard ~session ~tasks_globals ~restored:false
          ~supervised:(super <> None) ~captured:captured.(k))
  in
  build ~mode ~mailbox ~part
    ~algorithm:algorithm.Ltc_algo.Algorithm.name ~super ~journal ~fsync
    ~group_commit ~fresh shards_arr

let restore ?mailbox ?(mode = Domains) ?fsync ?group_commit ?supervise ~path
    () =
  let m = read_manifest ~path in
  let algorithm =
    match Ltc_algo.Algorithm.find_opt m.mf_algorithm with
    | Some a -> a
    | None ->
      invalid_arg
        (Printf.sprintf "Shard_server.restore: unknown algorithm %S in %s"
           m.mf_algorithm path)
  in
  let deadline =
    Option.map
      (fun (budget_s, fallback_name) ->
        match Ltc_algo.Algorithm.find_opt fallback_name with
        | Some fallback -> { Session.budget_s; fallback }
        | None ->
          invalid_arg
            (Printf.sprintf
               "Shard_server.restore: unknown fallback %S in %s"
               fallback_name path))
      m.mf_deadline
  in
  let fsync = Option.value fsync ~default:m.mf_fsync in
  let group_commit = Option.value group_commit ~default:m.mf_group_commit in
  let mailbox = Option.value mailbox ~default:m.mf_mailbox in
  let super =
    Option.map (fun c -> Supervisor.create ~shards:m.mf_shards c) supervise
  in
  let captured = Array.init m.mf_shards (fun _ -> ref None) in
  let hook k =
    match super with
    | None -> None
    | Some _ -> Some (fun d -> captured.(k) := Some d)
  in
  let part = make_partition ~shards:m.mf_shards m.mf_instance in
  let seeds = shard_seeds ~seed:m.mf_seed m.mf_shards in
  let fresh k =
    let _, tasks = shard_tasks part m.mf_instance k in
    Session.create ?accept_rate:m.mf_accept_rate ?deadline
      ?on_decision:(hook k) ~journal:(shard_journal path k)
      ~checkpoint_every:m.mf_checkpoint_every ~fsync ~format:m.mf_format
      ~group_commit ~algorithm ~seed:seeds.(k)
      (sub_instance m.mf_instance tasks)
  in
  let shards_arr =
    Array.init m.mf_shards (fun k ->
        let shard_path = shard_journal path k in
        let tasks_globals, _ = shard_tasks part m.mf_instance k in
        if
          (not (Sys.file_exists shard_path))
          || Session.is_empty_journal shard_path
        then
          (* This shard's journal never became durable (create-time crash
             or an untouched shard): restart it fresh, same derived seed. *)
          make_shard ~session:(fresh k) ~tasks_globals ~restored:false
            ~supervised:(super <> None) ~captured:captured.(k)
        else begin
          let session =
            Session.restore ?on_decision:(hook k) ~fsync ~group_commit
              ~path:shard_path ()
          in
          make_shard ~session ~tasks_globals ~restored:true
            ~supervised:(super <> None) ~captured:captured.(k)
        end)
  in
  build ~mode ~mailbox ~part
    ~algorithm:algorithm.Ltc_algo.Algorithm.name ~super ~journal:(Some path)
    ~fsync ~group_commit ~fresh shards_arr

(* ------------------------------------------------------- feeding/merging *)

let map_tasks sh ids = List.map (fun local -> sh.sh_tasks.(local)) ids

(* Release the contiguous prefix of pending entries starting at
   [t_next_emit], folding each into the global merge state.  Called with
   [t_cmutex] held; only the feeding thread releases, so the global
   bookkeeping updates in strict arrival order. *)
let release t =
  let out = ref [] in
  let rec loop () =
    match Hashtbl.find_opt t.t_pending t.t_next_emit with
    | None -> ()
    | Some entry ->
      let g = t.t_next_emit in
      Hashtbl.remove t.t_pending g;
      t.t_next_emit <- g + 1;
      (match entry with
      | P_ack ->
        out :=
          {
            Session.worker = g;
            assigned = [];
            answered = [];
            completed = true;
            latency = t.t_latency;
            degraded = false;
          }
          :: !out
      | P_skip (k, local) ->
        (* Consumed (and journaled) by its shard in a previous
           incarnation: rebuild the merge bookkeeping, emit nothing. *)
        let sh = t.t_shards.(k) in
        t.t_consumed <- t.t_consumed + 1;
        t.t_replayed <- t.t_replayed + 1;
        if Hashtbl.mem sh.sh_recruited local then
          t.t_latency <- max t.t_latency g
      | P_dead _ ->
        (* Shed, or owned by a quarantined shard: an explicit unassigned
           degraded ack.  Nothing was consumed and the shard's tasks stay
           incomplete — the merge layer just refuses to hang on it. *)
        out :=
          {
            Session.worker = g;
            assigned = [];
            answered = [];
            completed = t.t_incomplete = 0;
            latency = t.t_latency;
            degraded = true;
          }
          :: !out
      | P_dec (k, d) ->
        let sh = t.t_shards.(k) in
        let was_complete = t.t_incomplete = 0 in
        if not was_complete then t.t_consumed <- t.t_consumed + 1;
        if d.Session.completed && not sh.sh_complete then begin
          sh.sh_complete <- true;
          t.t_incomplete <- t.t_incomplete - 1
        end;
        if d.Session.answered <> [] then t.t_latency <- max t.t_latency g;
        out :=
          {
            Session.worker = g;
            assigned = map_tasks sh d.Session.assigned;
            answered = map_tasks sh d.Session.answered;
            completed = t.t_incomplete = 0;
            latency = t.t_latency;
            degraded = d.Session.degraded;
          }
          :: !out);
      loop ()
  in
  loop ();
  List.rev !out

let locked_release t =
  Mutex.lock t.t_cmutex;
  let out = release t in
  Mutex.unlock t.t_cmutex;
  out

let add_pending t g entry =
  Mutex.lock t.t_cmutex;
  Hashtbl.replace t.t_pending g entry;
  Mutex.unlock t.t_cmutex

(* ---------------------------------------------------------- supervision *)

(* Assign the next shard-local index to [w] and record the routing (and,
   when supervised, the arrival itself, for crash-time re-feed). *)
let route t sh g (w : Worker.t) =
  let local = sh.sh_local_fed + 1 in
  sh.sh_local_fed <- local;
  if local > Array.length sh.sh_globals then begin
    let n = Array.length sh.sh_globals in
    let bigger = Array.make (2 * n) 0 in
    Array.blit sh.sh_globals 0 bigger 0 n;
    sh.sh_globals <- bigger;
    if supervised t then begin
      let bigger_a = Array.make (2 * n) None in
      Array.blit sh.sh_arrivals 0 bigger_a 0 n;
      sh.sh_arrivals <- bigger_a
    end
  end;
  sh.sh_globals.(local - 1) <- g;
  if supervised t then sh.sh_arrivals.(local - 1) <- Some w;
  local

let scoped k f = Ltc_util.Fault.with_scope (Supervisor.scope ~shard:k) f

(* Quarantine shard [k]: clear its lane's standing failure (so quiesce,
   shutdown and the siblings are unaffected) and give every routed-but-
   unmerged arrival an explicit unassigned-decision ack — the merge layer
   keeps releasing instead of waiting forever on a dead shard.  Arrivals
   routed to [k] from now on are acked the same way at the door. *)
let quarantine_now t k =
  let sh = t.t_shards.(k) in
  if not sh.sh_quarantined then begin
    sh.sh_quarantined <- true;
    (match t.t_pool with
    | Some pool -> ignore (Ltc_util.Pool.Workers.restart pool ~lane:k)
    | None -> ());
    Mutex.lock t.t_cmutex;
    for local = sh.sh_decided + 1 to sh.sh_local_fed do
      Hashtbl.replace t.t_pending sh.sh_globals.(local - 1) (P_dead k)
    done;
    if sh.sh_local_fed > sh.sh_decided then sh.sh_decided <- sh.sh_local_fed;
    Mutex.unlock t.t_cmutex
  end

(* Restore shard [k]'s session from its journal and re-feed what the
   crash lost.  Runs on the calling domain under the shard's fault scope
   (recovery probes the same per-shard sites, so scripted restore-time
   faults stay deterministic); any exception here counts as another
   crash of the same shard. *)
let rec handle_crash t k =
  let super = Option.get t.t_super in
  match Supervisor.on_crash super ~shard:k with
  | `Quarantine -> quarantine_now t k
  | `Restart backoff_s -> (
    Ltc_util.Fault.sleep backoff_s;
    match revive t k with () -> () | exception _ -> handle_crash t k)

and revive t k =
  let sh = t.t_shards.(k) in
  let base =
    match t.t_journal with
    | Some base -> base
    | None -> invalid_arg "Shard_server: cannot revive without a journal"
  in
  let path = shard_journal base k in
  let session =
    scoped k (fun () ->
        if (not (Sys.file_exists path)) || Session.is_empty_journal path
        then t.t_fresh k
        else
          Session.restore
            ~on_decision:(fun d -> sh.sh_captured := Some d)
            ~fsync:t.t_fsync ~group_commit:t.t_group_commit ~path ())
  in
  sh.sh_session <- session;
  let m = Session.consumed session in
  (* The one arrival whose append became durable but whose merge insert
     the crash interrupted: its pre-append capture stands in (the
     restored session cannot re-decide an index it already consumed). *)
  (match !(sh.sh_captured) with
  | Some d when d.Session.worker = sh.sh_decided + 1 && d.Session.worker <= m
    ->
    add_entry t sh ~local:d.Session.worker
      sh.sh_globals.(d.Session.worker - 1)
      (P_dec (k, d))
  | _ -> ());
  (* The lane parked on its failure; clearing it lets the same domain
     consume again.  Its lost mailbox items are superseded by the
     retained-arrival re-feed below. *)
  (match t.t_pool with
  | Some pool -> ignore (Ltc_util.Pool.Workers.restart pool ~lane:k)
  | None -> ());
  (* Re-feed, in order, everything routed past the durable prefix: quiet
     for arrivals whose decision is already merged (the session must
     re-consume them to reach the same state, but no entry is inserted),
     live for the rest. *)
  for local = m + 1 to sh.sh_local_fed do
    let w =
      match sh.sh_arrivals.(local - 1) with
      | Some w -> w
      | None ->
        invalid_arg "Shard_server: supervised re-feed lost an arrival"
    in
    let lw =
      Worker.make ~index:local ~loc:w.Worker.loc ~accuracy:w.Worker.accuracy
        ~capacity:w.Worker.capacity
    in
    let quiet = local <= sh.sh_decided in
    match t.t_pool with
    | Some pool ->
      Ltc_util.Pool.Workers.push pool ~lane:k
        { mg = sh.sh_globals.(local - 1); mq = quiet; mw = lw }
    | None ->
      let d = scoped k (fun () -> Session.feed sh.sh_session lw) in
      if not quiet then
        add_entry t sh ~local sh.sh_globals.(local - 1) (P_dec (k, d))
  done

(* ----------------------------------------------------------------- feed *)

let feed t (w : Worker.t) =
  if t.t_closed then invalid_arg "Shard_server.feed: server is closed";
  if w.Worker.index <> t.t_fed + 1 then
    invalid_arg
      (Printf.sprintf "Shard_server.feed: expected arrival %d, got %d"
         (t.t_fed + 1) w.Worker.index);
  let g = t.t_fed + 1 in
  t.t_fed <- g;
  if completed t && Hashtbl.length t.t_pending = 0 then begin
    (* Globally complete and fully released: acknowledge without routing,
       consuming capacity or touching any shard — Session.feed parity. *)
    add_pending t g P_ack;
    locked_release t
  end
  else begin
    let k = shard_of_point t w.Worker.loc in
    let sh = t.t_shards.(k) in
    if sh.sh_skip > 0 then begin
      let local = route t sh g w in
      sh.sh_skip <- sh.sh_skip - 1;
      add_entry t sh ~local g (P_skip (k, local))
    end
    else if sh.sh_quarantined then
      (* Quarantined shard: ack at the door, never route. *)
      add_pending t g (P_dead k)
    else begin
      let local = route t sh g w in
      let local_worker =
        Worker.make ~index:local ~loc:w.Worker.loc
          ~accuracy:w.Worker.accuracy ~capacity:w.Worker.capacity
      in
      match t.t_pool with
      | None -> (
        match
          if supervised t then
            scoped k (fun () -> Session.feed sh.sh_session local_worker)
          else Session.feed sh.sh_session local_worker
        with
        | d -> add_entry t sh ~local g (P_dec (k, d))
        | exception e when supervised t ->
          ignore e;
          (* this arrival is already routed, so recovery re-feeds it *)
          handle_crash t k)
      | Some pool -> (
        let msg = { mg = g; mq = false; mw = local_worker } in
        let overload =
          match t.t_super with
          | None -> Supervisor.Block
          | Some s -> (Supervisor.config s).Supervisor.overload
        in
        match overload with
        | Supervisor.Block -> (
          match Ltc_util.Pool.Workers.push pool ~lane:k msg with
          | () -> ()
          | exception e when supervised t ->
            ignore e;
            (* the lane failed before accepting this arrival; it is
               already routed, so recovery re-feeds it *)
            handle_crash t k)
        | Supervisor.Shed -> (
          match Ltc_util.Pool.Workers.try_push pool ~lane:k msg with
          | true -> ()
          | false ->
            (* Mailbox full: shed instead of blocking.  Un-route the
               arrival (its local index was never seen by the session)
               and ack it explicitly. *)
            sh.sh_local_fed <- local - 1;
            sh.sh_arrivals.(local - 1) <- None;
            Supervisor.note_shed (Option.get t.t_super);
            add_pending t g (P_dead k)
          | exception e when supervised t ->
            ignore e;
            handle_crash t k))
    end;
    locked_release t
  end

let flush t =
  if t.t_closed then []
  else begin
    (match t.t_pool with
    | None -> ()
    | Some pool ->
      let rec drain () =
        Ltc_util.Pool.Workers.quiesce pool;
        let failed = ref None in
        for k = Array.length t.t_shards - 1 downto 0 do
          if Ltc_util.Pool.Workers.failure pool ~lane:k <> None then
            failed := Some k
        done;
        match !failed with
        | None -> ()
        | Some k ->
          if supervised t then begin
            handle_crash t k;
            drain ()
          end
          else begin
            match Ltc_util.Pool.Workers.first_failure pool with
            | Some (e, bt) -> Printexc.raise_with_backtrace e bt
            | None -> ()
          end
      in
      drain ());
    locked_release t
  end

let close t =
  if not t.t_closed then begin
    (match t.t_pool with
    | None -> ()
    | Some pool ->
      if supervised t then begin
        (* Recover (or quarantine) any lane that died with work in
           flight, so shutdown joins clean domains. *)
        let rec drain () =
          Ltc_util.Pool.Workers.quiesce pool;
          let failed = ref None in
          for k = Array.length t.t_shards - 1 downto 0 do
            if Ltc_util.Pool.Workers.failure pool ~lane:k <> None then
              failed := Some k
          done;
          match !failed with
          | None -> ()
          | Some k ->
            handle_crash t k;
            drain ()
        in
        drain ()
      end
      else Ltc_util.Pool.Workers.quiesce pool;
      Ltc_util.Pool.Workers.shutdown pool);
    t.t_closed <- true;
    Array.iter
      (fun sh ->
        (* A quarantined shard's session died mid-write; its journal tail
           is whatever was durable, and closing the dead handle could
           raise — abandon it like the chaos harness does. *)
        if not sh.sh_quarantined then Session.close sh.sh_session)
      t.t_shards
  end
