(* Hand-rolled flat-JSON codec for the serve wire format.  The events are
   one-line objects of numbers (arrivals in, decisions out); a full JSON
   library would add a dependency for no expressive gain. *)

exception Malformed of string

exception Bad_input of { line : int; text : string; reason : string }

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

(* ---------------------------------------------------------------- lexer *)

type token =
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Colon
  | Comma
  | String of string
  | Number of float
  | True
  | False

let tokenize line =
  let n = String.length line in
  let tokens = ref [] in
  let push t = tokens := t :: !tokens in
  let i = ref 0 in
  let is_number_char c =
    (c >= '0' && c <= '9')
    || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
  in
  while !i < n do
    (match line.[!i] with
    | ' ' | '\t' | '\r' -> incr i
    | '{' -> push Lbrace; incr i
    | '}' -> push Rbrace; incr i
    | '[' -> push Lbracket; incr i
    | ']' -> push Rbracket; incr i
    | ':' -> push Colon; incr i
    | ',' -> push Comma; incr i
    | '"' ->
      let close =
        match String.index_from_opt line (!i + 1) '"' with
        | Some j -> j
        | None -> malformed "unterminated string in %S" line
      in
      let s = String.sub line (!i + 1) (close - !i - 1) in
      if String.contains s '\\' then
        malformed "escape sequences are not supported: %S" s;
      push (String s);
      i := close + 1
    | 't' when !i + 4 <= n && String.sub line !i 4 = "true" ->
      push True;
      i := !i + 4
    | 'f' when !i + 5 <= n && String.sub line !i 5 = "false" ->
      push False;
      i := !i + 5
    | c when is_number_char c ->
      let j = ref !i in
      while !j < n && is_number_char line.[!j] do
        incr j
      done;
      let s = String.sub line !i (!j - !i) in
      (match float_of_string_opt s with
      | Some f -> push (Number f)
      | None -> malformed "bad number %S in %S" s line);
      i := !j
    | c -> malformed "unexpected character %C in %S" c line)
  done;
  List.rev !tokens

(* --------------------------------------------------------------- parser *)

(* A flat object: string keys, values that are numbers, booleans or arrays
   of numbers.  Exactly what arrivals and decisions need. *)
type value = Num of float | Bool of bool | Nums of float list

let parse_object line =
  let rec pairs acc = function
    | Rbrace :: [] -> List.rev acc
    | String key :: Colon :: rest -> value key acc rest
    | _ -> malformed "expected \"key\": value in %S" line
  and value key acc = function
    | Number f :: rest -> next ((key, Num f) :: acc) rest
    | True :: rest -> next ((key, Bool true) :: acc) rest
    | False :: rest -> next ((key, Bool false) :: acc) rest
    | Lbracket :: rest -> array key acc [] rest
    | _ -> malformed "unsupported value for %S in %S" key line
  and array key acc nums = function
    | Rbracket :: rest -> next ((key, Nums (List.rev nums)) :: acc) rest
    | Number f :: Comma :: rest -> array key acc (f :: nums) rest
    | Number f :: (Rbracket :: _ as rest) -> array key acc (f :: nums) rest
    | _ -> malformed "bad array for %S in %S" key line
  and next acc = function
    | Comma :: rest -> pairs acc rest
    | [ Rbrace ] -> List.rev acc
    | _ -> malformed "expected ',' or '}' in %S" line
  in
  match tokenize line with
  | Lbrace :: Rbrace :: [] -> []
  | Lbrace :: rest -> pairs [] rest
  | _ -> malformed "expected a JSON object, got %S" line

let int_of_float_field ~key f =
  let i = int_of_float f in
  if float_of_int i <> f then malformed "%S must be an integer, got %g" key f;
  i

let get fields key =
  match List.assoc_opt key fields with
  | Some v -> v
  | None -> malformed "missing key %S" key

let num fields key =
  match get fields key with
  | Num f -> f
  | Bool _ | Nums _ -> malformed "%S must be a number" key

let int fields key = int_of_float_field ~key (num fields key)

(* -------------------------------------------------------------- arrivals *)

let arrival_of_line line =
  let fields = parse_object line in
  Ltc_core.Worker.make ~index:(int fields "index")
    ~loc:
      (Ltc_geo.Point.make ~x:(num fields "x") ~y:(num fields "y"))
    ~accuracy:(num fields "accuracy")
    ~capacity:(int fields "capacity")

(* Truncate the offending bytes for error messages: a malformed "line"
   could be megabytes of binary garbage. *)
let excerpt ?(max = 60) s =
  if String.length s <= max then s else String.sub s 0 max ^ "..."

let arrival_exn ~line:line_no text =
  Ltc_util.Fault.check "ndjson.parse";
  try arrival_of_line text with
  | Malformed reason ->
    raise (Bad_input { line = line_no; text = excerpt text; reason })
  | Invalid_argument reason ->
    raise (Bad_input { line = line_no; text = excerpt text; reason })

let arrival_to_line (w : Ltc_core.Worker.t) =
  Printf.sprintf
    "{\"index\":%d,\"x\":%.17g,\"y\":%.17g,\"accuracy\":%.17g,\"capacity\":%d}"
    w.index w.loc.Ltc_geo.Point.x w.loc.Ltc_geo.Point.y w.accuracy w.capacity

(* ------------------------------------------------------------- decisions *)

let int_list_to_json tasks =
  "[" ^ String.concat "," (List.map string_of_int tasks) ^ "]"

(* [degraded] is emitted only when true, so the common fault-free wire
   format is unchanged. *)
let decision_to_line ?(degraded = false) ~worker ~assigned ~answered
    ~completed ~latency () =
  Printf.sprintf
    "{\"index\":%d,\"assigned\":%s,\"answered\":%s,\"completed\":%b,\"latency\":%d%s}"
    worker (int_list_to_json assigned) (int_list_to_json answered) completed
    latency
    (if degraded then ",\"degraded\":true" else "")

let decision_of_line line =
  let fields = parse_object line in
  let int_list key =
    match get fields key with
    | Nums fs -> List.map (int_of_float_field ~key) fs
    | Num _ | Bool _ -> malformed "%S must be an array of integers" key
  in
  let bool ?default key =
    match (List.assoc_opt key fields, default) with
    | Some (Bool b), _ -> b
    | Some (Num _ | Nums _), _ -> malformed "%S must be a boolean" key
    | None, Some d -> d
    | None, None -> malformed "missing key %S" key
  in
  ( int fields "index",
    int_list "assigned",
    int_list "answered",
    bool "completed",
    int fields "latency",
    bool ~default:false "degraded" )
