module Fault = Ltc_util.Fault
module Metrics = Ltc_util.Metrics

type overload = Block | Shed

type config = {
  max_restarts : int;
  backoff : Fault.Retry.spec;
  overload : overload;
}

let default =
  { max_restarts = 3; backoff = Fault.Retry.default; overload = Block }

let overload_name = function Block -> "block" | Shed -> "shed"

let overload_of_string = function
  | "block" -> Ok Block
  | "shed" -> Ok Shed
  | s -> Error (Printf.sprintf "unknown overload policy %S (block|shed)" s)

(* Fleet-wide health counters; registration is idempotent, so every
   supervised server shares one series per name. *)
let restarts_total =
  Metrics.counter ~help:"Shard sessions restored online after a crash"
    "ltc_shard_restarts_total"

let shed_total =
  Metrics.counter ~help:"Arrivals shed by overload admission control"
    "ltc_shard_shed_total"

let quarantined_gauge =
  Metrics.gauge ~help:"Shards quarantined after exhausting their restart budget"
    "ltc_shard_quarantined"

type t = {
  config : config;
  restarts : int array;  (* per shard, successful-or-attempted restarts *)
  quarantined : bool array;
  mutable shed : int;
}

let create ~shards config =
  if shards < 1 then invalid_arg "Supervisor.create: shards must be >= 1";
  if config.max_restarts < 0 then
    invalid_arg "Supervisor.create: max_restarts must be >= 0";
  {
    config;
    restarts = Array.make shards 0;
    quarantined = Array.make shards false;
    shed = 0;
  }

let config t = t.config
let shards t = Array.length t.restarts
let shard_restarts t = Array.copy t.restarts
let restarts t = Array.fold_left ( + ) 0 t.restarts

let quarantined t =
  Array.fold_left (fun acc q -> acc + if q then 1 else 0) 0 t.quarantined

let is_quarantined t ~shard = t.quarantined.(shard)
let shed t = t.shed

let note_shed t =
  t.shed <- t.shed + 1;
  Metrics.Counter.incr shed_total

let scope ~shard = Printf.sprintf "shard%d" shard

let on_crash t ~shard =
  if shard < 0 || shard >= Array.length t.restarts then
    invalid_arg "Supervisor.on_crash: no such shard";
  if t.quarantined.(shard) then `Quarantine
  else if t.restarts.(shard) >= t.config.max_restarts then begin
    t.quarantined.(shard) <- true;
    Metrics.Gauge.add quarantined_gauge 1.0;
    `Quarantine
  end
  else begin
    t.restarts.(shard) <- t.restarts.(shard) + 1;
    Metrics.Counter.incr restarts_total;
    `Restart (Fault.Retry.backoff_s t.config.backoff t.restarts.(shard))
  end
