(** A resumable streaming session over the batch engine.

    A session holds the task side of an instance plus one online algorithm
    from {!Ltc_algo.Algorithm} and consumes worker arrivals one at a time
    via {!feed}, returning the assignment decision for each.  Feeding the
    same arrival stream into a session reproduces {!Ltc_algo.Engine.run}
    byte for byte: the same arrangement, the same latency, the same RNG
    draws — including under [accept_rate < 1] no-show noise.

    When created with [~journal:path], every processed arrival is appended
    to an on-disk journal together with its decision, and a full snapshot
    (progress, arrangement, both RNG states) is folded in every
    [checkpoint_every] events — text journals by atomically compacting
    the file down to header + snapshot; binary journals by appending the
    snapshot as an ordinary record (with a full compaction every 16th
    periodic snapshot to bound file growth).  {!restore} rebuilds a
    session from such a journal:
    it loads the latest snapshot, replays the event tail by re-running the
    policy (verifying the recomputed decisions against the journaled
    ones), drops any torn record at the end of the file, and compacts.
    Recovery work is therefore bounded by [checkpoint_every] arrivals no
    matter how long the session has run.

    {2 Crash safety}

    All journal writes pass through named {!Ltc_util.Fault} sites and
    bounded-backoff retries ({!Ltc_util.Fault.Retry}), so the chaos
    harness can tear, fail or crash any of them deterministically:

    - ["journal.header"] — the header written by {!create}
    - ["journal.append"] — the group-commit write(2) carrying the
      buffered event records (one record per group by default)
    - ["journal.append.fsync"] — per-group fsync (only with
      [~fsync:true])
    - ["journal.checkpoint.write"] — the compacted image into [path.tmp]
    - ["journal.checkpoint.fsync"] — fsync of the temp file
    - ["journal.checkpoint.rename"] — just before the atomic rename
    - ["journal.checkpoint.dir"] — just before the directory fsync
    - ["session.decide"] — after the primary policy decides (the [Delay]
      fault site that triggers deadline degradation)

    Compaction writes the replacement image to [path.tmp], renames it
    over [path] — with [~fsync:true] additionally fsyncing the temp file
    before and the directory entry after (power-loss durability; the
    atomic rename alone already survives process crashes) — so a crash
    between any two sites leaves exactly one journal visible, and
    {!restore} deletes stale [.tmp] debris before reading.  The decision stream of a
    crashed-and-restored session is byte-identical to the uninterrupted
    run up to the last durable event.

    {2 Codecs and group commit}

    Journals come in two on-disk codecs.  [Text] (header v2) is the
    line-oriented format of earlier versions — old journals keep
    restoring byte-identically.  [Binary] (header v3: the same text
    header plus a [codec binary] line, then length-prefixed CRC32-framed
    records — see {!Ltc_core.Serialize.Binary}) is the fast path: replay
    streams frames without line splitting, and the CRC keeps interior
    corruption distinguishable from a torn tail.

    [group_commit] coalesces up to N encoded records into a single
    write(2) — and, with [~fsync:true], a single fsync — amortizing the
    durability discipline over the group (bounded by an internal byte
    threshold).  The buffered group is flushed synchronously before
    every checkpoint/compaction and on {!close}; a crash loses at most
    the buffered group, which {!restore} treats exactly like a torn
    tail: those arrivals were never acknowledged as durable, and the
    stream re-feeds them. *)

type t

type codec = Text | Binary

val codec_name : codec -> string
(** ["text"] / ["binary"]. *)

val codec_of_string : string -> (codec, string) result
(** Inverse of {!codec_name}; [Error] names the offending input. *)

type decision = {
  worker : int;  (** arrival index the decision answers *)
  assigned : int list;  (** tasks the policy assigned, in policy order *)
  answered : int list;
      (** subset of [assigned] that showed up (all of it when
          [accept_rate] is [None]) *)
  completed : bool;  (** all tasks complete after this arrival *)
  latency : int;  (** current latency: largest recruited arrival index *)
  degraded : bool;
      (** the deadline fallback, not the primary policy, made this
          decision *)
}

type deadline = {
  budget_s : float;  (** per-arrival decision budget in seconds (> 0) *)
  fallback : Ltc_algo.Algorithm.t;
      (** cheap online algorithm that decides an arrival whose primary
          decision arrived late *)
}
(** Per-arrival solve deadline, measured with {!Ltc_util.Fault.Clock} so
    tests can virtualise time.  Semantics match
    {!Ltc_algo.Engine.config}[.degrade]: the primary always runs (and
    consumes its RNG draws); on a budget overrun its answer is discarded
    and the fallback — sharing the session's progress state — decides
    instead.  Degraded decisions are journaled distinctly, so replay and
    {!restore} reproduce them from the journal without consulting any
    clock. *)

exception Corrupt_journal of { path : string; message : string }
(** Raised by {!restore} when the journal's prefix is unreadable, an
    {e interior} record is damaged (intact records follow it), or the
    replayed decisions diverge from the journaled ones.  Interior damage
    is reported with the byte offset, line and record index of the broken
    record plus an excerpt of the offending bytes.  (A torn {e suffix} —
    an interrupted append — is expected crash damage and is silently
    dropped instead.) *)

val create :
  ?accept_rate:float ->
  ?deadline:deadline ->
  ?on_decision:(decision -> unit) ->
  ?journal:string ->
  ?checkpoint_every:int ->
  ?fsync:bool ->
  ?format:codec ->
  ?group_commit:int ->
  algorithm:Ltc_algo.Algorithm.t ->
  seed:int ->
  Ltc_core.Instance.t ->
  t
(** [create ~algorithm ~seed instance] starts a fresh session.  Workers
    embedded in [instance] are ignored (arrivals come from {!feed});
    internally the session keeps a worker-stripped copy.

    [accept_rate] enables per-assignment no-show noise exactly as
    {!Ltc_algo.Engine.run} does — one Bernoulli draw per assigned task, in
    assignment order.  [deadline] enables graceful degradation (recorded
    in the journal header, so restored sessions keep degrading).
    [on_decision] is invoked for every consuming decision {e before} it is
    journaled — the chaos harness uses this to account for decisions whose
    journal append crashed.  [journal] starts an on-disk journal at that
    path (truncating any existing file); [checkpoint_every] (default
    [256]) sets the compaction period in events; [fsync] (default
    [false]) additionally fsyncs after every group commit; [format]
    (default [Text]) picks the on-disk codec; [group_commit] (default
    [1]) sets how many records are coalesced per write/fsync.

    @raise Invalid_argument if [algorithm] (or the deadline fallback) has
    no online policy ([policy = None]: Base-off, MCF-LTC, the dynamic
    variants), if [accept_rate] is outside (0, 1], if the deadline budget
    is [<= 0], if [checkpoint_every < 1], or if [group_commit < 1]. *)

val feed : t -> Ltc_core.Worker.t -> decision
(** Process the next arrival.  Arrival indices must be consecutive from 1:
    feeding worker [k] when [consumed t <> k - 1] raises
    [Invalid_argument].  Once the session is complete, further arrivals
    are acknowledged with [assigned = []] without being consumed,
    journaled, or drawing RNG — mirroring the batch loop, which stops
    before the arrival that follows completion.

    @raise Invalid_argument on a closed session or a gap in the stream.
    @raise Ltc_algo.Engine.Invalid_decision if the policy misbehaves. *)

val restore :
  ?on_decision:(decision -> unit) ->
  ?journal:string ->
  ?fsync:bool ->
  ?group_commit:int ->
  path:string ->
  unit ->
  t
(** [restore ~path ()] rebuilds a session from a journal file and
    compacts it immediately.  The codec is auto-detected from the
    header, and the restored session keeps journaling in that codec —
    to [journal] when given, else to [path].  [group_commit] (default
    [1]) applies to the re-attached journal.  Replayed tail events do
    {e not} fire [on_decision] visibly different from live ones — the
    hook sees every decision the restored session makes from now on, and
    replayed decisions are verified against the journal instead.

    @raise Corrupt_journal as documented above.
    @raise Sys_error if [path] cannot be read. *)

val is_empty_journal : string -> bool
(** [true] iff the file exists and is zero bytes — a journal that crashed
    before its header hit the disk.  The CLI treats resuming such a file
    as starting a fresh session rather than an error. *)

val checkpoint : t -> unit
(** Force a snapshot + full compaction now, on either codec (no-op
    without a journal). *)

val close : t -> unit
(** Flush and close the journal; further {!feed} calls raise.
    Idempotent. *)

(** {1 Observers} *)

val consumed : t -> int
(** Arrivals consumed so far (= index of the last processed arrival). *)

val completed : t -> bool
(** All tasks complete? *)

val latency : t -> int
(** Largest recruited arrival index so far ([0] before any recruitment). *)

val arrangement : t -> Ltc_core.Arrangement.t
(** The arrangement built so far. *)

val algorithm_name : t -> string

val degraded_total : t -> int
(** Arrivals decided by the deadline fallback in {e this} incarnation
    (restore replays do count, matching the original timeline). *)

val rng_states : t -> int64 * int64
(** [(policy, no-show)] generator states — the determinism fingerprint
    used by the kill/restore tests. *)

val feed_hdr : t -> Ltc_util.Metrics.Hdr.t
(** Always-on decide-latency quantiles for this session's live arrivals,
    measured on {!Ltc_util.Fault.Clock} — virtual seconds when the clock
    is virtualised (the load generator's mode), wall seconds otherwise.
    Replayed (restore) arrivals contribute no samples. *)

val journal_bytes : t -> int
(** Current journal file size in bytes ([0] without a journal, or after
    {!close}). *)

val peak_memory_mb : t -> float
(** Policy scratch high-water mark, as tracked for {!Ltc_algo.Engine}
    outcomes. *)

(** {1 Offline journal tools}

    Read-only inspection and record-level transcoding of journal files,
    without building a session (the [ltc journal] subcommand).  Both
    share {!restore}'s scanners: a torn tail is silently dropped,
    interior corruption raises {!Corrupt_journal} with the same
    diagnostics. *)

module Journal : sig
  type info = {
    version : int;  (** header version as parsed (1, 2 or 3) *)
    codec : codec;
    algorithm : string;
    seed : int;
    accept_rate : float option;
    checkpoint_every : int;
    deadline : (float * string) option;  (** budget (s), fallback name *)
    tasks : int;  (** task count of the embedded instance *)
    file_bytes : int;  (** on-disk size, torn tail included *)
    torn_bytes : int;
        (** bytes of torn tail a restore would drop ([0] when every
            record is complete) *)
    snapshots : int;  (** complete snapshot records in the file *)
    events : int;  (** complete event records in the file *)
    consumed : int;  (** arrivals a restore would recover *)
    snapshot_offsets : int list;
        (** byte offset of each snapshot record, in file order *)
  }

  val inspect : path:string -> info
  (** @raise Corrupt_journal on interior damage.
      @raise Sys_error if [path] cannot be read. *)

  val convert : src:string -> dst:string -> codec -> unit
  (** Re-encode every complete record of [src] into [dst] in the given
      codec, preserving order and content: restoring [dst] lands on the
      same session fingerprint as restoring [src].  A torn tail is not
      carried over; v1 headers are upgraded on the way through.
      [dst] is truncated if it exists; converting a journal onto itself
      is not supported. *)
end
