(** Sharded multi-session serving: spatial partitioning over a
    domain-per-shard runtime.

    A shard server splits an instance's task universe into [shards]
    spatial shards and runs one journaled {!Session} per shard.  The
    task plane is cut into grid cells (side = the instance's candidate
    radius, like {!Ltc_geo.Grid_index}), and every cell is mapped to a
    shard by a deterministic rendezvous hash — so the partition is a pure
    function of the instance and the shard count, and {!restore} rebuilds
    it exactly.  Each worker arrival is routed to the shard owning its
    location's cell and fed to that shard's session with a shard-local
    arrival index; a merge layer re-emits the per-shard decisions in
    global arrival order with global task ids, a global latency watermark
    and a global completion flag.

    {2 Execution modes}

    - [`Domains] (the default): each shard's session lives on its own
      OCaml 5 domain behind a bounded mailbox
      ({!Ltc_util.Pool.Workers}).  A full mailbox blocks {!feed}
      (backpressure, counted in {!stalls}) — arrivals are never silently
      dropped.  Decisions become available as their global-order
      predecessors complete; {!feed} returns whatever prefix is ready and
      {!flush} blocks for the rest.
    - [`Inline]: no domains; arrivals are decided synchronously on the
      calling domain and {!feed} returns each decision immediately.  The
      decision stream is identical to [`Domains] — this is the mode for
      anything driven by {!Ltc_util.Fault} (kill/restore tests, virtual
      loadgen), whose plans must not be probed from concurrent domains.

    {2 Durability}

    With [~journal:base], shard [k] journals to [base.shard<k>] (codec and
    group commit as configured, exactly like a single session) and the
    partition parameters + instance go into a manifest at [base] itself.
    Each shard owns its durability boundary independently: a crash can
    tear each shard journal at a different arrival, and {!restore}
    recovers every shard to its own last durable record (torn tails
    dropped per shard, missing/empty shard files restarted fresh).  After
    a restore, re-feeding the whole arrival stream from index 1 is
    idempotent: arrivals a shard already consumed are skipped (rebuilding
    the merge layer's latency/completion bookkeeping without re-emitting
    their decisions) and only never-durable arrivals are re-decided.

    {2 Parity}

    On workloads whose arrivals are {e shard-local} — every candidate
    task of every worker lies in the worker's own grid cell — the merged
    decision stream and final fingerprint are identical to one
    un-sharded session over the whole instance, for candidate-local
    deterministic policies (LAF, LGF-only, LRF-only, Nearest) without
    no-show noise.  Boundary-crossing candidates, RNG-drawing policies
    (Random, [accept_rate]) and globally-aggregating policies (AAM) break
    that equivalence — see DESIGN.md §14. *)

type t

type mode = Inline | Domains

val create :
  ?accept_rate:float ->
  ?deadline:Session.deadline ->
  ?journal:string ->
  ?checkpoint_every:int ->
  ?fsync:bool ->
  ?format:Session.codec ->
  ?group_commit:int ->
  ?mailbox:int ->
  ?mode:mode ->
  ?supervise:Supervisor.config ->
  shards:int ->
  algorithm:Ltc_algo.Algorithm.t ->
  seed:int ->
  Ltc_core.Instance.t ->
  t
(** [create ~shards ~algorithm ~seed instance] partitions [instance]'s
    tasks and starts one session per shard (shard seeds are derived from
    [seed] with {!Ltc_util.Rng.split_seed}).  Workers embedded in
    [instance] are ignored; arrivals come from {!feed}.  [mailbox]
    (default [64]) bounds each shard's queue in [`Domains] mode; the
    session options are applied to every shard session alike.

    [supervise] turns on the sharded failure model (DESIGN.md §16): a
    shard whose session raises is captured without touching its
    siblings, restored online from its own journal with
    {!Supervisor.config}[.backoff] between attempts, and re-fed the
    arrivals its mailbox lost; a shard that exhausts
    [config.max_restarts] is quarantined — its arrivals (pending and
    future) are released as explicit unassigned degraded acks.  With
    [overload = Shed], an arrival routed to a full mailbox is shed the
    same way instead of blocking.  Supervised shard domains probe
    {!Ltc_util.Fault} sites under the ["shard<k>"] scope, which is what
    lets {!Chaos.run_sharded} script per-shard faults deterministically
    in [`Domains] mode.  Supervision retains every routed arrival in
    memory for re-feed — the cost of online recovery.

    @raise Invalid_argument when [shards < 1], [mailbox < 1], the
    session options are invalid (see {!Session.create}), or [supervise]
    has [max_restarts > 0] without [~journal]. *)

val feed : t -> Ltc_core.Worker.t -> Session.decision list
(** Route the next arrival (indices consecutive from 1, as in
    {!Session.feed}) and return every decision that became releasable in
    global order.  In [`Inline] mode that is exactly this arrival's
    decision — except after a restore, where an arrival its shard already
    consumed is skipped and the list is empty.  In [`Domains] mode the
    list holds whatever contiguous prefix of decisions the shard domains
    have finished (possibly empty, possibly several).  Once the server is
    globally complete, further arrivals are acknowledged without routing,
    mirroring {!Session.feed}.

    @raise Invalid_argument on a closed server or a gap in the stream. *)

val flush : t -> Session.decision list
(** Wait for every routed arrival to be decided and return the remaining
    decisions in global order ([`Inline]: always []). *)

val close : t -> unit
(** {!flush} whatever is in flight, stop the shard domains, and close
    every shard session (journals flushed).  Idempotent. *)

val restore :
  ?mailbox:int -> ?mode:mode -> ?fsync:bool -> ?group_commit:int ->
  ?supervise:Supervisor.config -> path:string -> unit -> t
(** [restore ~path ()] rebuilds a shard server from the manifest written
    by [create ~journal:path]: the partition is recomputed from the
    embedded instance, every [path.shard<k>] is restored with
    per-shard torn-tail tolerance ({!Session.restore}), and shards whose
    journal is missing or empty are restarted fresh.  [fsync] /
    [group_commit] / [mailbox] / [mode] override the re-attached
    configuration (defaults: the manifest's values, [`Domains]).  Feed
    the arrival stream again from index 1: already-durable arrivals are
    skipped, the rest are re-decided.

    @raise Session.Corrupt_journal / [Sys_error] /
    [Ltc_core.Serialize.Parse_error] as the underlying restores do. *)

val is_manifest : string -> bool
(** [true] iff the file exists and starts with the shard-manifest magic —
    how [ltc serve --resume] tells a sharded journal from a plain one. *)

(** The manifest's configuration lines, read without restoring anything —
    what [ltc journal inspect] prints before enumerating the
    [path.shard<k>] journals. *)
type manifest_info = {
  mi_shards : int;
  mi_mailbox : int;
  mi_algorithm : string;
  mi_seed : int;
  mi_accept_rate : float option;
  mi_checkpoint_every : int;
  mi_fsync : bool;
  mi_format : Session.codec;
  mi_group_commit : int;
  mi_deadline : (float * string) option;  (** budget (s), fallback name *)
  mi_tasks : int;  (** task count of the embedded instance *)
}

val manifest_info : path:string -> manifest_info
(** @raise Ltc_core.Serialize.Parse_error on a malformed manifest.
    @raise Sys_error if [path] cannot be read. *)

val shard_journal_path : base:string -> shard:int -> string
(** The journal path of one shard under manifest [base] —
    ["<base>.shard<k>"]. *)

(** {1 Observers} *)

val shards : t -> int
val mode : t -> mode
val algorithm_name : t -> string

val consumed : t -> int
(** Arrivals consumed globally (live and, after a restore, replayed). *)

val resumed_at : t -> int
(** Arrivals recovered from the shard journals by {!restore} ([0] for a
    fresh server). *)

val replayed : t -> int
(** Re-fed arrivals that were skipped because their shard had already
    consumed them in a previous incarnation. *)

val completed : t -> bool
(** Every shard complete? *)

val latency : t -> int
(** Largest global arrival index that answered an assignment. *)

val stalls : t -> int
(** Mailbox-full backpressure stalls ({!Ltc_util.Pool.Workers.stalls};
    [0] in [`Inline] mode). *)

val degraded_total : t -> int
(** Sum of the shard sessions' deadline-fallback decisions. *)

val supervised : t -> bool

val restarts : t -> int
(** Online shard restores performed by the supervisor ([0] when
    unsupervised). *)

val shard_restarts : t -> int array
(** Per-shard restart counts. *)

val quarantined : t -> int
(** Shards quarantined after exhausting their restart budget. *)

val shed : t -> int
(** Arrivals shed by [overload = Shed] admission control. *)

val arrangement : t -> Ltc_core.Arrangement.t
(** The merged arrangement in global task ids and global arrival order —
    byte-comparable to an un-sharded session's.  Call after {!flush} (or
    {!close}) in [`Domains] mode. *)

val shard_of_point : t -> Ltc_geo.Point.t -> int
(** The shard an arrival at this location routes to (pure). *)

val shard_consumed : t -> int array
(** Per-shard consumed counters (shard-local arrival indices). *)

val shard_task_counts : t -> int array
(** Tasks owned by each shard. *)

val per_shard_hdr : t -> Ltc_util.Metrics.Hdr.t array
(** Each shard session's decide-latency histogram
    ({!Session.feed_hdr}).  Quiesce ({!flush}) before reading in
    [`Domains] mode. *)

val merged_hdr : t -> Ltc_util.Metrics.Hdr.t
(** A fresh histogram holding every shard's samples, built with
    {!Ltc_util.Metrics.Hdr.merge} (the config-checked merge path). *)

val journal_bytes : t -> int
(** Total bytes across all shard journals (manifest excluded). *)
