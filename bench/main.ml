(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Sec. V) plus the ablations of DESIGN.md §4.

     dune exec bench/main.exe                 # everything, default scales
     dune exec bench/main.exe -- --list       # experiment catalogue
     dune exec bench/main.exe -- fig3-T fig4-eps --scale 1 --reps 30
     dune exec bench/main.exe -- micro        # bechamel micro benches

   Scales shrink workloads density-preservingly (1.0 = the paper's exact
   cardinalities); shapes are preserved, absolute numbers are not. *)

open Ltc_experiments

(* Per-figure wall time and throughput, reported by --json. *)
type figure_stat = {
  j_id : string;
  j_scale : float;
  j_reps : int;
  j_jobs : int;
  j_seed : int;
  j_wall_s : float;
  j_runs : int;  (** algorithm executions (Runner.runs_executed delta) *)
}

(* --json entries: (key, rendered JSON object body) pairs, so figure stats
   and standalone benches (flow-batch-reuse) share one writer. *)
let render_figure_stat s =
  let rps =
    if s.j_wall_s > 0.0 then float_of_int s.j_runs /. s.j_wall_s else 0.0
  in
  ( Printf.sprintf "BENCH_%s" s.j_id,
    Printf.sprintf
      "{\"id\": %S, \"scale\": %g, \"reps\": %d, \"jobs\": %d, \"seed\": %d, \
       \"wall_s\": %.6f, \"runs\": %d, \"runs_per_sec\": %.3f}"
      s.j_id s.j_scale s.j_reps s.j_jobs s.j_seed s.j_wall_s s.j_runs rps )

let write_json ~path entries =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  List.iteri
    (fun i (key, body) ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b (Printf.sprintf "  %S: %s" key body))
    entries;
  Buffer.add_string b "\n}\n";
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc b)

let run_figure ~jobs ~scale ~reps ~seed ~csv ~plot (e : Figures.t) =
  let scale = Option.value scale ~default:e.Figures.default_scale in
  Printf.printf "### %s — %s\n" e.Figures.id e.Figures.panels;
  Printf.printf "    %s\n" e.Figures.description;
  Printf.printf "    scale=%g reps=%d seed=%d jobs=%d\n\n%!" scale reps seed
    jobs;
  let runs_before = Runner.runs_executed () in
  let outputs, dt =
    Ltc_util.Timer.time (fun () -> e.Figures.run ~jobs ~scale ~reps ~seed)
  in
  let runs = Runner.runs_executed () - runs_before in
  List.iter
    (fun o ->
      Runner.print o;
      if plot then
        Option.iter (fun p -> print_newline (); print_string p) (Runner.to_plot o);
      (match csv with
      | None -> ()
      | Some dir ->
        let path = Runner.write_csv ~dir o in
        Printf.printf "(csv: %s)\n" path);
      print_newline ())
    outputs;
  Printf.printf "(%s finished in %.1f s)\n\n%!" e.Figures.id dt;
  {
    j_id = e.Figures.id;
    j_scale = scale;
    j_reps = reps;
    j_jobs = jobs;
    j_seed = seed;
    j_wall_s = dt;
    j_runs = runs;
  }

(* ------------------------------------------------- flow batch-reuse bench *)

(* Contrast the {!Ltc_flow} hot-path regimes on one identical batch
   sequence (the buffered-MCF shape: arriving workers against thousands of
   open tasks):

     cold         fresh graph + fresh workspace + Bellman-Ford per batch
                  (the pre-arena behaviour)
     reuse-dag    one arena + one workspace, [`Dag_topo] potentials
     reuse-warm   as reuse-dag, plus warm-started potentials from the
                  previous batch's finals
     incremental  one {!Ltc_flow.Solver} session: the task plane, its
                  residuals and potentials stay alive across batches; each
                  batch stacks its workers and links on top, resolves with
                  kept potentials and retracts — consumed task units are
                  re-armed through [set_unit], so every variant faces the
                  identical problem sequence

   Two shapes: the PR-5 trickle (8 workers/batch, where per-batch setup
   dominates the tiny flow) and a ~100x batch (800 workers/batch, where
   the solve dominates).  All variants solve problem-identical networks;
   the checksum asserts they agree (exactly for reuse-dag, within float
   tolerance for warm starts and the incremental session, whose different
   node layouts may resolve sub-epsilon ties differently). *)
let flow_batch_id = "flow-batch-reuse"

type flow_shape_stat = {
  fb_batches : int;
  fb_nodes : int;
  fb_arcs : int;
  fb_flow : int;
  fb_cold_s : float;
  fb_dag_s : float;
  fb_warm_s : float;
  fb_inc_s : float;
  fb_checksum_ok : bool;
}

let flow_batch_shape ~label ~n_tasks ~batch_workers ~degree ~batches ~reps =
  let capacity = 1 in
  let source = 0 in
  let first_task = 1 + batch_workers in
  let sink = first_task + n_tasks in
  let nodes = sink + 1 in
  let arcs = batch_workers + (batch_workers * degree) + n_tasks in
  (* Every variant rebuilds the identical arc sequence for batch [b]. *)
  let build g b =
    let rng = Ltc_util.Rng.create ~seed:(1000 + b) in
    for w = 0 to batch_workers - 1 do
      ignore
        (Ltc_flow.Graph.add_arc g ~src:source ~dst:(1 + w) ~cap:capacity
           ~cost:0.0)
    done;
    for w = 0 to batch_workers - 1 do
      for _ = 1 to degree do
        let t = Ltc_util.Rng.int rng n_tasks in
        ignore
          (Ltc_flow.Graph.add_arc g ~src:(1 + w) ~dst:(first_task + t) ~cap:1
             ~cost:(-.Ltc_util.Rng.float rng 1.0))
      done
    done;
    for t = 0 to n_tasks - 1 do
      ignore
        (Ltc_flow.Graph.add_arc g ~src:(first_task + t) ~dst:sink ~cap:1
           ~cost:0.0)
    done
  in
  let cold () =
    let flow = ref 0 and cost = ref 0.0 in
    for b = 0 to batches - 1 do
      let g = Ltc_flow.Graph.create ~n:nodes in
      build g b;
      let r = Ltc_flow.Mcmf.run g ~source ~sink in
      flow := !flow + r.Ltc_flow.Mcmf.flow;
      cost := !cost +. r.Ltc_flow.Mcmf.cost
    done;
    (!flow, !cost)
  in
  let reused ~init ~after () =
    let g = Ltc_flow.Graph.create ~n:1 in
    let ws = Ltc_flow.Mcmf.create_workspace () in
    let flow = ref 0 and cost = ref 0.0 in
    for b = 0 to batches - 1 do
      Ltc_flow.Graph.clear g ~n:nodes;
      build g b;
      let r = Ltc_flow.Mcmf.run g ~workspace:ws ~init:(init b) ~source ~sink in
      after ws;
      flow := !flow + r.Ltc_flow.Mcmf.flow;
      cost := !cost +. r.Ltc_flow.Mcmf.cost
    done;
    (!flow, !cost)
  in
  let reuse_dag =
    reused ~init:(fun _ -> `Dag_topo) ~after:(fun _ -> ())
  in
  let reuse_warm =
    let warm = Array.make nodes 0.0 in
    let have = ref false in
    reused
      ~init:(fun _ -> if !have then `Warm_start warm else `Dag_topo)
      ~after:(fun ws ->
        Array.blit (Ltc_flow.Mcmf.borrow_potentials ws) 0 warm 0 nodes;
        have := true)
  in
  let incremental () =
    let sol = Ltc_flow.Solver.create ~hint:(n_tasks + 2) "incremental" in
    for t = 0 to n_tasks - 1 do
      Ltc_flow.Solver.set_unit sol ~unit_id:t ~cap:1
    done;
    let touched = Array.make n_tasks false in
    let max_links = batch_workers * degree in
    let links = Array.make max_links 0 in
    let ltask = Array.make max_links 0 in
    let flow = ref 0 and cost = ref 0.0 in
    for b = 0 to batches - 1 do
      (* Same RNG stream as [build]: identical link targets and costs. *)
      let rng = Ltc_util.Rng.create ~seed:(1000 + b) in
      Ltc_flow.Solver.begin_batch sol;
      for _ = 1 to batch_workers do
        ignore (Ltc_flow.Solver.add_worker sol ~cap:capacity : int)
      done;
      let nl = ref 0 in
      for w = 0 to batch_workers - 1 do
        for _ = 1 to degree do
          let t = Ltc_util.Rng.int rng n_tasks in
          let c = -.Ltc_util.Rng.float rng 1.0 in
          links.(!nl) <-
            Ltc_flow.Solver.add_link sol ~worker:w ~unit_id:t ~cost:c;
          ltask.(!nl) <- t;
          incr nl
        done
      done;
      let r = Ltc_flow.Solver.resolve sol () in
      flow := !flow + r.Ltc_flow.Mcmf.flow;
      cost := !cost +. r.Ltc_flow.Mcmf.cost;
      for k = 0 to !nl - 1 do
        if Ltc_flow.Solver.link_flow sol links.(k) = 1 then
          touched.(ltask.(k)) <- true
      done;
      Ltc_flow.Solver.end_batch sol;
      (* Re-arm consumed units so every batch faces the same cap-1 plane
         the scratch variants rebuild from scratch. *)
      for t = 0 to n_tasks - 1 do
        if touched.(t) then begin
          touched.(t) <- false;
          Ltc_flow.Solver.set_unit sol ~unit_id:t ~cap:1
        end
      done
    done;
    (!flow, !cost)
  in
  let time_variant f =
    ignore (f ());
    (* warmup: page faults, arena growth *)
    let result = ref (0, 0.0) in
    let (), dt =
      Ltc_util.Timer.time (fun () ->
          for _ = 1 to reps do
            result := f ()
          done)
    in
    (!result, dt /. float_of_int reps)
  in
  let (cold_flow, cold_cost), cold_s = time_variant cold in
  let (dag_flow, dag_cost), dag_s = time_variant reuse_dag in
  let (warm_flow, warm_cost), warm_s = time_variant reuse_warm in
  let (inc_flow, inc_cost), inc_s = time_variant incremental in
  let checksum_ok =
    dag_flow = cold_flow
    && dag_cost = cold_cost (* `Dag_topo is bit-identical to Bellman-Ford *)
    && warm_flow = cold_flow
    && Float.abs (warm_cost -. cold_cost) < 1e-6
    && inc_flow = cold_flow
    && Float.abs (inc_cost -. cold_cost) < 1e-6
  in
  let speedup t = if t > 0.0 then cold_s /. t else 0.0 in
  let row name t =
    [
      Ltc_util.Table.Str name;
      Ltc_util.Table.Float (1000.0 *. t);
      Ltc_util.Table.Float (speedup t);
    ]
  in
  Printf.printf
    "%s: %d batches/pass x %d workers, %d nodes, %d arcs each; flow %d, \
     cost %.3f\n"
    label batches batch_workers nodes arcs cold_flow cold_cost;
  Printf.printf "checksum: %s\n\n"
    (if checksum_ok then "all variants agree" else "VARIANTS DISAGREE");
  Ltc_util.Table.print ~float_digits:2
    ~header:[ "variant"; "time/pass (ms)"; "speedup vs cold" ]
    [ row "cold (fresh + Bellman-Ford)" cold_s;
      row "reused arena + `Dag_topo" dag_s;
      row "reused arena + warm start" warm_s;
      row "incremental session" inc_s ];
  print_newline ();
  {
    fb_batches = batches;
    fb_nodes = nodes;
    fb_arcs = arcs;
    fb_flow = cold_flow;
    fb_cold_s = cold_s;
    fb_dag_s = dag_s;
    fb_warm_s = warm_s;
    fb_inc_s = inc_s;
    fb_checksum_ok = checksum_ok;
  }

let run_flow_batch ~scale () =
  print_endline
    "### flow-batch-reuse — arena, workspace and residual reuse on the MCF \
     hot path\n";
  let sc x = max 1 (int_of_float (Float.round (scale *. float_of_int x))) in
  let n_tasks = sc 6000 in
  let degree = min 64 n_tasks in
  let small =
    flow_batch_shape ~label:"trickle" ~n_tasks ~batch_workers:8 ~degree
      ~batches:48 ~reps:3
  in
  (* ~100x the trickle's batch width: the solve dominates, so the win is
     the kept potentials, not the skipped rebuild. *)
  let big =
    flow_batch_shape ~label:"100x" ~n_tasks ~batch_workers:(sc 800) ~degree
      ~batches:6 ~reps:1
  in
  let speedup cold t = if t > 0.0 then cold /. t else 0.0 in
  ( "BENCH_flow_batch",
    Printf.sprintf
      "{\"batches\": %d, \"nodes\": %d, \"arcs\": %d, \"flow_units\": %d, \
       \"cold_bf_s\": %.6f, \"reuse_dag_s\": %.6f, \"reuse_warm_s\": %.6f, \
       \"incremental_s\": %.6f, \"speedup_dag\": %.3f, \"speedup_warm\": \
       %.3f, \"speedup_incremental\": %.3f, \"checksum_ok\": %d, \
       \"x100_batches\": %d, \"x100_nodes\": %d, \"x100_arcs\": %d, \
       \"x100_flow_units\": %d, \"x100_cold_bf_s\": %.6f, \
       \"x100_reuse_dag_s\": %.6f, \"x100_reuse_warm_s\": %.6f, \
       \"x100_incremental_s\": %.6f, \"x100_speedup_dag\": %.3f, \
       \"x100_speedup_warm\": %.3f, \"x100_speedup_incremental\": %.3f, \
       \"x100_checksum_ok\": %d}"
      small.fb_batches small.fb_nodes small.fb_arcs small.fb_flow
      small.fb_cold_s small.fb_dag_s small.fb_warm_s small.fb_inc_s
      (speedup small.fb_cold_s small.fb_dag_s)
      (speedup small.fb_cold_s small.fb_warm_s)
      (speedup small.fb_cold_s small.fb_inc_s)
      (if small.fb_checksum_ok then 1 else 0)
      big.fb_batches big.fb_nodes big.fb_arcs big.fb_flow big.fb_cold_s
      big.fb_dag_s big.fb_warm_s big.fb_inc_s
      (speedup big.fb_cold_s big.fb_dag_s)
      (speedup big.fb_cold_s big.fb_warm_s)
      (speedup big.fb_cold_s big.fb_inc_s)
      (if big.fb_checksum_ok then 1 else 0) )

(* --------------------------------------------------- serve-replay micro *)

(* Streaming-service costs: plain feed, journaled feed in both codecs
   (text: line-oriented append + flush per arrival; binary: CRC-framed
   records with group commit) and per-codec checkpoint/restore — snapshot
   load plus policy replay of the journal tail.  The identical flag
   asserts that every journaled run and every session restored from a
   mid-stream kill finishes with exactly the plain run's arrangement,
   latency and RNG states — for binary with group commit, the restored
   session recovers exactly the last committed group boundary (the
   buffered suffix behaves like a torn tail). *)
let serve_replay_id = "serve-replay"

let copy_file ~src ~dst =
  let body = In_channel.with_open_bin src In_channel.input_all in
  Out_channel.with_open_bin dst (fun oc -> Out_channel.output_string oc body)

let run_serve_replay () =
  print_endline
    "### serve-replay — journaled feed and checkpoint/restore costs\n";
  let spec =
    {
      Ltc_workload.Spec.default_synthetic with
      Ltc_workload.Spec.n_tasks = 2000;
      n_workers = 3000;
      capacity = 2;
    }
  in
  let instance =
    Ltc_workload.Synthetic.generate (Ltc_util.Rng.create ~seed:11) spec
  in
  let ws = Array.to_list instance.Ltc_core.Instance.workers in
  let n_events = List.length ws in
  let algorithm = Ltc_algo.Algorithm.laf in
  let seed = 42 in
  let checkpoint_every = 256 in
  let group_commit = 64 in
  (* one full tail pending: restore replays checkpoint_every - 1 events *)
  let kill_at = (2 * checkpoint_every) - 1 in
  let tail_events = kill_at mod checkpoint_every in
  (* With group commit, events buffered past the last committed group die
     with the kill; restore recovers exactly the committed boundary. *)
  let durable_at = kill_at - (tail_events mod group_commit) in
  let tail_events_binary = durable_at mod checkpoint_every in
  let feed_all s =
    List.iter (fun w -> ignore (Ltc_service.Session.feed s w)) ws
  in
  let fingerprint s =
    ( Ltc_core.Arrangement.to_list (Ltc_service.Session.arrangement s),
      Ltc_service.Session.latency s,
      Ltc_service.Session.consumed s,
      Ltc_service.Session.rng_states s )
  in
  (* Each pass is deterministic, so inter-pass spread is pure measurement
     noise (shared-host I/O stalls hit single passes with multi-ms
     hiccups).  Best-of-N is the low-noise estimator for that regime —
     a mean would charge one stalled pass to every variant unevenly. *)
  let time_variant f =
    ignore (f ());
    (* warmup *)
    let reps = 7 in
    let result = ref (f ()) in
    let best = ref infinity in
    for _ = 1 to reps do
      let r, dt = Ltc_util.Timer.time f in
      result := r;
      if dt < !best then best := dt
    done;
    (!result, !best)
  in
  let journal = Filename.temp_file "ltc_bench_serve" ".journal" in
  let pristine_text = Filename.temp_file "ltc_bench_serve" ".ptext" in
  let pristine_binary = Filename.temp_file "ltc_bench_serve" ".pbin" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ journal; pristine_text; pristine_binary ])
  @@ fun () ->
  let plain () =
    let s = Ltc_service.Session.create ~algorithm ~seed instance in
    feed_all s;
    fingerprint s
  in
  let journaled ~format ~group_commit () =
    let s =
      Ltc_service.Session.create ~journal ~checkpoint_every ~format
        ~group_commit ~algorithm ~seed instance
    in
    feed_all s;
    Ltc_service.Session.close s;
    fingerprint s
  in
  (* Crash fixtures: kill_at events journaled, session abandoned unclosed
     — for binary with group commit, the last partial group stays
     buffered and dies with the kill. *)
  let make_pristine ~format ~group_commit path =
    let s =
      Ltc_service.Session.create ~journal:path ~checkpoint_every ~format
        ~group_commit ~algorithm ~seed instance
    in
    List.iteri
      (fun j w -> if j < kill_at then ignore (Ltc_service.Session.feed s w))
      ws
  in
  make_pristine ~format:Ltc_service.Session.Text ~group_commit:1
    pristine_text;
  make_pristine ~format:Ltc_service.Session.Binary ~group_commit
    pristine_binary;
  let restore_once pristine () =
    copy_file ~src:pristine ~dst:journal;
    let s = Ltc_service.Session.restore ~path:journal () in
    Ltc_service.Session.close s;
    Ltc_service.Session.consumed s
  in
  (* Finish one restored session and compare against the plain run. *)
  let resume pristine =
    copy_file ~src:pristine ~dst:journal;
    let s = Ltc_service.Session.restore ~path:journal () in
    let start = Ltc_service.Session.consumed s in
    List.iteri
      (fun j w -> if j >= start then ignore (Ltc_service.Session.feed s w))
      ws;
    Ltc_service.Session.close s;
    fingerprint s
  in
  let plain_fp, plain_s = time_variant plain in
  let text_fp, text_s =
    time_variant (journaled ~format:Ltc_service.Session.Text ~group_commit:1)
  in
  let binary_fp, binary_s =
    time_variant
      (journaled ~format:Ltc_service.Session.Binary ~group_commit)
  in
  let restored_text, restore_text_s =
    time_variant (restore_once pristine_text)
  in
  let restored_binary, restore_binary_s =
    time_variant (restore_once pristine_binary)
  in
  let resumed_text_fp = resume pristine_text in
  let resumed_binary_fp = resume pristine_binary in
  let identical =
    text_fp = plain_fp && binary_fp = plain_fp
    && resumed_text_fp = plain_fp
    && resumed_binary_fp = plain_fp
    && restored_text = kill_at
    && restored_binary = durable_at
  in
  let per_s events t = if t > 0.0 then float_of_int events /. t else 0.0 in
  let journal_speedup =
    if binary_s > 0.0 then text_s /. binary_s else 0.0
  in
  Printf.printf
    "%d arrivals, checkpoint every %d, group commit %d, killed at %d; \
     restored consumed %d (text, %d-event tail) / %d (binary, %d-event \
     tail)\n"
    n_events checkpoint_every group_commit kill_at restored_text tail_events
    restored_binary tail_events_binary;
  Printf.printf "checksum: %s\n\n"
    (if identical then "journaled and restored runs match the plain run"
     else "RUNS DISAGREE");
  let row name events t =
    [
      Ltc_util.Table.Str name;
      Ltc_util.Table.Float (1000.0 *. t);
      Ltc_util.Table.Float (per_s events t);
    ]
  in
  Ltc_util.Table.print ~float_digits:2
    ~header:[ "variant"; "time/pass (ms)"; "events/s" ]
    [
      row "feed (no journal)" n_events plain_s;
      row "feed + text journal" n_events text_s;
      row
        (Printf.sprintf "feed + binary journal (group %d)" group_commit)
        n_events binary_s;
      row "restore text (snapshot + replay)" tail_events restore_text_s;
      row "restore binary (snapshot + replay)" tail_events_binary
        restore_binary_s;
    ];
  print_newline ();
  ( "BENCH_serve_replay",
    Printf.sprintf
      "{\"events\": %d, \"tail_events\": %d, \"tail_events_binary\": %d, \
       \"checkpoint_every\": %d, \"group_commit\": %d, \"feed_s\": %.6f, \
       \"feed_journal_text_s\": %.6f, \"feed_journal_binary_s\": %.6f, \
       \"restore_text_s\": %.6f, \"restore_binary_s\": %.6f, \
       \"feed_per_s\": %.1f, \"feed_journal_text_per_s\": %.1f, \
       \"feed_journal_binary_per_s\": %.1f, \"replay_text_per_s\": %.1f, \
       \"replay_binary_per_s\": %.1f, \"journal_speedup\": %.3f, \
       \"identical\": %d}"
      n_events tail_events tail_events_binary checkpoint_every group_commit
      plain_s text_s binary_s restore_text_s restore_binary_s
      (per_s n_events plain_s) (per_s n_events text_s)
      (per_s n_events binary_s)
      (per_s tail_events restore_text_s)
      (per_s tail_events_binary restore_binary_s)
      journal_speedup
      (if identical then 1 else 0) )

(* --------------------------------------------------- chaos-replay micro *)

(* Fault-tolerance overhead: one full Chaos.run pass — baseline, then the
   same stream under a scripted fault plan with kill/restore at every
   injected crash — timed end to end.  The identical flag asserts the
   surviving stream matched the baseline; a 0 here is a correctness
   regression, not a performance one.

   A second scenario runs the same instance through Chaos.run_sharded: a
   supervised domain-per-shard server under per-shard scoped fault plans,
   where every crash is an online shard restore (siblings keep serving)
   rather than a whole-process kill.  sharded_identical pins the same
   survival guarantee for the supervised path. *)
let chaos_replay_id = "chaos-replay"

let run_chaos_replay () =
  print_endline "### chaos-replay — kill/restore survival cost\n";
  let spec =
    {
      Ltc_workload.Spec.default_synthetic with
      Ltc_workload.Spec.n_tasks = 500;
      n_workers = 1500;
      capacity = 2;
    }
  in
  let instance =
    Ltc_workload.Synthetic.generate (Ltc_util.Rng.create ~seed:11) spec
  in
  let n_events = Array.length instance.Ltc_core.Instance.workers in
  let algorithm = Ltc_algo.Algorithm.laf in
  let seed = 42 in
  let checkpoint_every = 64 in
  let plan =
    Ltc_util.Fault.plan ~crashes:6 ~io_errors:4 ~torn_writes:4 ~delays:4
      ~horizon:300 ~seed:29
      ~sites:
        [
          "journal.header"; "journal.append.fsync";
          "journal.checkpoint.fsync"; "journal.checkpoint.rename";
          "journal.checkpoint.dir";
        ]
      ~write_sites:[ "journal.append"; "journal.checkpoint.write" ]
      ~delay_sites:[ "session.decide" ] ()
  in
  let journal = Filename.temp_file "ltc_bench_chaos" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove journal with Sys_error _ -> ())
  @@ fun () ->
  let pass () =
    Ltc_service.Chaos.run ~checkpoint_every ~plan ~algorithm ~seed ~journal
      instance
  in
  ignore (pass ());
  (* warmup *)
  let reps = 3 in
  let report = ref (pass ()) in
  let (), dt =
    Ltc_util.Timer.time (fun () ->
        for _ = 1 to reps do
          report := pass ()
        done)
  in
  let chaos_s = dt /. float_of_int reps in
  let r = !report in
  let per_s = if chaos_s > 0.0 then float_of_int n_events /. chaos_s else 0.0 in
  Printf.printf
    "%d arrivals, checkpoint every %d, %d scripted faults; kills %d, \
     restores %d\n"
    n_events checkpoint_every (List.length plan) r.Ltc_service.Chaos.crashes
    r.Ltc_service.Chaos.restores;
  Printf.printf "checksum: %s\n\n"
    (if r.Ltc_service.Chaos.identical then
       "surviving stream identical to fault-free baseline"
     else "STREAMS DIVERGED");
  let shards = 4 in
  let s_plan =
    Ltc_service.Chaos.sharded_plan ~crashes:2 ~io_errors:2 ~torn_writes:2
      ~horizon:120 ~seed:29 ~shards ()
  in
  let sharded_base = Filename.temp_file "ltc_bench_chaos_shard" ".journal" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        (sharded_base
        :: List.init shards (fun k ->
               Ltc_service.Shard_server.shard_journal_path ~base:sharded_base
                 ~shard:k)))
  @@ fun () ->
  let sharded_pass () =
    Ltc_service.Chaos.run_sharded ~checkpoint_every ~plan:s_plan ~shards
      ~algorithm ~seed ~journal:sharded_base instance
  in
  ignore (sharded_pass ());
  (* warmup *)
  let sreport = ref (sharded_pass ()) in
  let (), sdt =
    Ltc_util.Timer.time (fun () ->
        for _ = 1 to reps do
          sreport := sharded_pass ()
        done)
  in
  let sharded_s = sdt /. float_of_int reps in
  let sr = !sreport in
  let sharded_per_s =
    if sharded_s > 0.0 then float_of_int n_events /. sharded_s else 0.0
  in
  Printf.printf
    "sharded: %d shards, %d scripted faults; shard restarts %d (%s), \
     quarantined %d\n"
    shards (List.length s_plan) sr.Ltc_service.Chaos.s_restarts
    (String.concat ","
       (Array.to_list
          (Array.map string_of_int sr.Ltc_service.Chaos.s_shard_restarts)))
    sr.Ltc_service.Chaos.s_quarantined;
  Printf.printf "sharded checksum: %s\n\n"
    (if sr.Ltc_service.Chaos.s_identical then
       "merged stream identical to fault-free baseline"
     else "STREAMS DIVERGED");
  Ltc_util.Table.print ~float_digits:2
    ~header:[ "variant"; "time/pass (ms)"; "arrivals/s" ]
    [
      [
        Ltc_util.Table.Str "chaos (baseline + faulted + restores)";
        Ltc_util.Table.Float (1000.0 *. chaos_s);
        Ltc_util.Table.Float per_s;
      ];
      [
        Ltc_util.Table.Str
          (Printf.sprintf "sharded chaos (%d shards, online restores)"
             shards);
        Ltc_util.Table.Float (1000.0 *. sharded_s);
        Ltc_util.Table.Float sharded_per_s;
      ];
    ];
  print_newline ();
  ( "BENCH_chaos_replay",
    Printf.sprintf
      "{\"arrivals\": %d, \"checkpoint_every\": %d, \"plan_faults\": %d, \
       \"kills\": %d, \"restores\": %d, \"degraded\": %d, \"chaos_s\": \
       %.6f, \"arrivals_per_s\": %.1f, \"identical\": %d, \"shards\": %d, \
       \"sharded_plan_faults\": %d, \"shard_restarts\": %d, \
       \"shard_quarantined\": %d, \"shard_shed\": %d, \"sharded_chaos_s\": \
       %.6f, \"sharded_arrivals_per_s\": %.1f, \"sharded_identical\": %d}"
      n_events checkpoint_every (List.length plan)
      r.Ltc_service.Chaos.crashes r.Ltc_service.Chaos.restores
      r.Ltc_service.Chaos.degraded chaos_s per_s
      (if r.Ltc_service.Chaos.identical then 1 else 0)
      shards (List.length s_plan) sr.Ltc_service.Chaos.s_restarts
      sr.Ltc_service.Chaos.s_quarantined sr.Ltc_service.Chaos.s_shed
      sharded_s sharded_per_s
      (if sr.Ltc_service.Chaos.s_identical then 1 else 0) )

(* ------------------------------------------------------ loadgen micro *)

(* Open-loop SLO measurement cost and output: one Loadgen pass — flash
   crowd over a deadline session with exponential service times — timed
   end to end.  The latency stats run on the virtual clock, so every pass
   reproduces them exactly; the identical flag asserts that (a 0 is a
   determinism regression).  Only loadgen_s/arrivals_per_s are
   machine-dependent. *)
let loadgen_id = "loadgen"

let run_loadgen () =
  print_endline "### loadgen — open-loop SLO latency under a flash crowd\n";
  let spec =
    {
      Ltc_workload.Spec.default_synthetic with
      Ltc_workload.Spec.n_tasks = 500;
      n_workers = 1500;
      capacity = 2;
    }
  in
  let instance =
    Ltc_workload.Synthetic.generate (Ltc_util.Rng.create ~seed:11) spec
  in
  let workers = instance.Ltc_core.Instance.workers in
  let algorithm = Ltc_algo.Algorithm.laf in
  let fallback =
    match Ltc_algo.Algorithm.find_opt "Nearest" with
    | Some a -> a
    | None -> assert false
  in
  let seed = 42 in
  let shape =
    Ltc_workload.Shape.make ~rate:2000.0
      (Ltc_workload.Shape.Burst { factor = 8.0; at_s = 0.25; dur_s = 0.25 })
  in
  let config =
    {
      (Ltc_service.Loadgen.default_config ~shape) with
      Ltc_service.Loadgen.arrivals = Array.length workers;
      service = Ltc_service.Loadgen.Exponential 4e-4;
      seed;
      slo_s = Some 0.002;
    }
  in
  let pass () =
    let session =
      Ltc_service.Session.create
        ~deadline:{ Ltc_service.Session.budget_s = 0.002; fallback }
        ~algorithm ~seed instance
    in
    let report = Ltc_service.Loadgen.run ~session ~workers config in
    Ltc_service.Session.close session;
    report
  in
  ignore (pass ());
  (* warmup *)
  let reps = 3 in
  let report = ref (pass ()) in
  let (), dt =
    Ltc_util.Timer.time (fun () ->
        for _ = 1 to reps do
          report := pass ()
        done)
  in
  let loadgen_s = dt /. float_of_int reps in
  let r = !report in
  let open Ltc_service.Loadgen in
  let fingerprint (r : report) =
    ( r.r_offered, r.r_consumed, r.r_degraded, r.r_breaches, r.r_makespan_s,
      r.r_p50_s, r.r_p99_s, r.r_p999_s, r.r_max_s )
  in
  let identical = fingerprint (pass ()) = fingerprint r in
  let per_s = if loadgen_s > 0.0 then float_of_int r.r_offered /. loadgen_s else 0.0 in
  Format.printf "%a" pp_report r;
  Printf.printf "checksum: %s\n\n"
    (if identical then "virtual-clock stats identical across passes"
     else "PASSES DISAGREE");
  Ltc_util.Table.print ~float_digits:2
    ~header:[ "variant"; "time/pass (ms)"; "arrivals/s" ]
    [
      [
        Ltc_util.Table.Str "loadgen (flash crowd, exp service)";
        Ltc_util.Table.Float (1000.0 *. loadgen_s);
        Ltc_util.Table.Float per_s;
      ];
    ];
  print_newline ();
  ( "BENCH_loadgen",
    Printf.sprintf
      "{\"arrivals\": %d, \"consumed\": %d, \"degraded\": %d, \"breaches\": \
       %d, \"offered_per_s\": %.1f, \"achieved_per_s\": %.1f, \"p50_s\": \
       %.6f, \"p99_s\": %.6f, \"p999_s\": %.6f, \"max_s\": %.6f, \
       \"loadgen_s\": %.6f, \"arrivals_per_s\": %.1f, \"identical\": %d}"
      r.r_offered r.r_consumed r.r_degraded r.r_breaches r.r_offered_per_s
      r.r_achieved_per_s r.r_p50_s r.r_p99_s r.r_p999_s r.r_max_s loadgen_s
      per_s
      (if identical then 1 else 0) )

(* --------------------------------------------------- serve-shard micro *)

(* Sharded serving throughput: the same clustered, shard-local arrival
   stream fed to a single session and to a Shard_server at 1/2/4/8
   shards in [`Domains] mode.  The identical flag asserts every sharded
   run's merged fingerprint matched the single session byte for byte —
   a 0 here is a correctness regression.  Speedup expectations are
   scaled by the core count so a single-core container records an
   honest baseline instead of a vacuous failure. *)
let serve_shard_id = "serve-shard"

let run_serve_shard () =
  print_endline
    "### serve-shard — spatially sharded serving vs a single session\n";
  let clusters = 32 and tasks_per = 48 and n_arrivals = 8000 in
  let capacity = 2 in
  (* Shard-local clustered workload (the parity regime of DESIGN.md
     S14): cluster [i] centred at x = 90i + 15, tasks within +-10 of
     the centre, workers jittered +-8, all at y = 10 with candidate
     radius 30 — every candidate lies in its worker's own grid cell, so
     the sharded decision stream must match the single session's. *)
  let rng = Ltc_util.Rng.create ~seed:11 in
  let center i = (90.0 *. float_of_int i) +. 15.0 in
  let tasks =
    Array.init (clusters * tasks_per) (fun id ->
        let c = id / tasks_per and j = id mod tasks_per in
        let dx =
          -10.0
          +. (20.0 *. float_of_int j /. float_of_int (max 1 (tasks_per - 1)))
        in
        Ltc_core.Task.make ~id
          ~loc:(Ltc_geo.Point.make ~x:(center c +. dx) ~y:10.0)
          ())
  in
  let workers =
    Array.init n_arrivals (fun i ->
        let c = i mod clusters in
        let dx = Ltc_util.Rng.float rng 16.0 -. 8.0 in
        Ltc_core.Worker.make ~index:(i + 1)
          ~loc:(Ltc_geo.Point.make ~x:(center c +. dx) ~y:10.0)
          ~accuracy:(0.7 +. Ltc_util.Rng.float rng 0.25)
          ~capacity)
  in
  let instance = Ltc_core.Instance.create ~tasks ~workers ~epsilon:0.25 () in
  let n_tasks = Array.length tasks in
  let algorithm = Ltc_algo.Algorithm.laf in
  let seed = 42 in
  (* Best-of-N, as in serve-replay: each pass is deterministic, so
     inter-pass spread is scheduler/host noise. *)
  let time_variant f =
    ignore (f ());
    (* warmup *)
    let reps = 5 in
    let result = ref (f ()) in
    let best = ref infinity in
    for _ = 1 to reps do
      let r, dt = Ltc_util.Timer.time f in
      result := r;
      if dt < !best then best := dt
    done;
    (!result, !best)
  in
  let single () =
    let s = Ltc_service.Session.create ~algorithm ~seed instance in
    Array.iter (fun w -> ignore (Ltc_service.Session.feed s w)) workers;
    ( Ltc_core.Arrangement.to_list (Ltc_service.Session.arrangement s),
      Ltc_service.Session.latency s,
      Ltc_service.Session.consumed s,
      Ltc_service.Session.completed s )
  in
  let sharded shards () =
    let srv =
      Ltc_service.Shard_server.create ~mailbox:256
        ~mode:Ltc_service.Shard_server.Domains ~shards ~algorithm ~seed
        instance
    in
    Array.iter
      (fun w -> ignore (Ltc_service.Shard_server.feed srv w))
      workers;
    ignore (Ltc_service.Shard_server.flush srv);
    let fp =
      ( Ltc_core.Arrangement.to_list
          (Ltc_service.Shard_server.arrangement srv),
        Ltc_service.Shard_server.latency srv,
        Ltc_service.Shard_server.consumed srv,
        Ltc_service.Shard_server.completed srv )
    in
    Ltc_service.Shard_server.close srv;
    fp
  in
  let single_fp, single_s = time_variant single in
  let fp1, shard1_s = time_variant (sharded 1) in
  let fp2, shard2_s = time_variant (sharded 2) in
  let fp4, shard4_s = time_variant (sharded 4) in
  let fp8, shard8_s = time_variant (sharded 8) in
  let identical =
    fp1 = single_fp && fp2 = single_fp && fp4 = single_fp
    && fp8 = single_fp
  in
  let cores = Ltc_util.Pool.default_jobs () in
  let speedup t = if t > 0.0 then single_s /. t else 0.0 in
  let speedup4 = speedup shard4_s in
  (* The 1.7x-at-4-shards target assumes 4 cores; on smaller hosts the
     router thread serialises everything, so scale the bar by the cores
     actually available (1 core -> 0.425x just asks sharding not to
     more-than-halve throughput). *)
  let expected4 = 1.7 *. float_of_int (min cores 4) /. 4.0 in
  let scaling_ok = speedup4 >= expected4 in
  let per_s t = if t > 0.0 then float_of_int n_arrivals /. t else 0.0 in
  Printf.printf
    "%d arrivals over %d tasks in %d clusters; %d core(s) — expecting \
     >=%.2fx at 4 shards\n"
    n_arrivals n_tasks clusters cores expected4;
  Printf.printf "checksum: %s\n\n"
    (if identical then "all sharded runs match the single session"
     else "RUNS DISAGREE");
  let row name t =
    [
      Ltc_util.Table.Str name;
      Ltc_util.Table.Float (1000.0 *. t);
      Ltc_util.Table.Float (per_s t);
      Ltc_util.Table.Float (speedup t);
    ]
  in
  Ltc_util.Table.print ~float_digits:2
    ~header:[ "variant"; "time/pass (ms)"; "arrivals/s"; "speedup" ]
    [
      row "feed single session" single_s;
      row "feed 1 shard (domains)" shard1_s;
      row "feed 2 shards (domains)" shard2_s;
      row "feed 4 shards (domains)" shard4_s;
      row "feed 8 shards (domains)" shard8_s;
    ];
  print_newline ();
  ( "BENCH_serve_shard",
    Printf.sprintf
      "{\"arrivals\": %d, \"tasks\": %d, \"clusters\": %d, \"cores\": %d, \
       \"feed_single_s\": %.6f, \"feed_shard1_s\": %.6f, \"feed_shard2_s\": \
       %.6f, \"feed_shard4_s\": %.6f, \"feed_shard8_s\": %.6f, \
       \"single_per_s\": %.1f, \"shard4_per_s\": %.1f, \"speedup_shard4\": \
       %.3f, \"speedup_shard8\": %.3f, \"expected_speedup_shard4\": %.3f, \
       \"scaling_ok\": %d, \"identical\": %d}"
      n_arrivals n_tasks clusters cores single_s shard1_s shard2_s shard4_s
      shard8_s (per_s single_s) (per_s shard4_s) speedup4 (speedup shard8_s)
      expected4
      (if scaling_ok then 1 else 0)
      (if identical then 1 else 0) )

(* ------------------------------------------------------- micro benchmarks *)

let micro_tests () =
  let open Bechamel in
  let spec =
    Ltc_workload.Spec.scale_synthetic 0.1 Ltc_workload.Spec.default_synthetic
  in
  let instance =
    Ltc_workload.Synthetic.generate (Ltc_util.Rng.create ~seed:1) spec
  in
  let progress =
    Ltc_core.Progress.create_per_task
      ~thresholds:(Ltc_core.Instance.thresholds instance)
  in
  let tracker = Ltc_util.Mem.Tracker.create () in
  let worker = instance.Ltc_core.Instance.workers.(17) in
  let laf_decide = Ltc_algo.Laf.policy instance tracker progress in
  let aam_decide = Ltc_algo.Aam.policy instance tracker progress in
  let random_decide =
    Ltc_algo.Random_assign.policy ~seed:7 instance tracker progress
  in
  (* A representative single-batch LTC network: 60 workers x 40 tasks. *)
  let fill_mcmf_input g =
    let rng = Ltc_util.Rng.create ~seed:3 in
    for w = 1 to 60 do
      ignore (Ltc_flow.Graph.add_arc g ~src:0 ~dst:w ~cap:6 ~cost:0.0);
      for t = 61 to 100 do
        if Ltc_util.Rng.bernoulli rng 0.2 then
          ignore
            (Ltc_flow.Graph.add_arc g ~src:w ~dst:t ~cap:1
               ~cost:(-.Ltc_util.Rng.float rng 1.0))
      done
    done;
    for t = 61 to 100 do
      ignore (Ltc_flow.Graph.add_arc g ~src:t ~dst:101 ~cap:4 ~cost:0.0)
    done
  in
  let mcmf_input () =
    let g = Ltc_flow.Graph.create ~n:102 in
    fill_mcmf_input g;
    g
  in
  let reuse_g = Ltc_flow.Graph.create ~n:1 in
  let reuse_ws = Ltc_flow.Mcmf.create_workspace () in
  [
    Test.make ~name:"laf-arrival"
      (Staged.stage (fun () -> ignore (laf_decide worker)));
    Test.make ~name:"aam-arrival"
      (Staged.stage (fun () -> ignore (aam_decide worker)));
    Test.make ~name:"random-arrival"
      (Staged.stage (fun () -> ignore (random_decide worker)));
    Test.make ~name:"grid-candidates"
      (Staged.stage (fun () ->
           ignore (Ltc_core.Instance.candidates instance worker)));
    Test.make ~name:"grid-candidates-sorted"
      (Staged.stage (fun () ->
           (* The allocation-free path the policies use (vs. the list above). *)
           Ltc_core.Instance.iter_candidates_sorted instance worker (fun _ ->
               ())));
    Test.make ~name:"progress-aggregates"
      (Staged.stage (fun () ->
           ignore (Ltc_core.Progress.max_remaining progress);
           ignore (Ltc_core.Progress.sum_remaining progress)));
    Test.make ~name:"mcmf-batch-60x40"
      (Staged.stage (fun () ->
           let g = mcmf_input () in
           ignore (Ltc_flow.Mcmf.run g ~source:0 ~sink:101)));
    Test.make ~name:"mcmf-batch-60x40-reused"
      (Staged.stage (fun () ->
           (* Same solve on the allocation-free path: cleared arena, shared
              workspace, single-sweep DAG potentials. *)
           Ltc_flow.Graph.clear reuse_g ~n:102;
           fill_mcmf_input reuse_g;
           ignore
             (Ltc_flow.Mcmf.run reuse_g ~workspace:reuse_ws ~init:`Dag_topo
                ~source:0 ~sink:101)));
  ]

let run_micro () =
  let open Bechamel in
  let open Toolkit in
  print_endline "### micro — per-arrival decision and substrate costs\n";
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let instances = Instance.[ monotonic_clock; minor_allocated ] in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"micro" ~fmt:"%s %s" (micro_tests ()))
  in
  let ols witness =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0
         ~predictors:[| Measure.run |])
      witness raw
  in
  let time_results = ols Instance.monotonic_clock in
  let alloc_results = ols Instance.minor_allocated in
  let estimate tbl name =
    match Hashtbl.find_opt tbl name with
    | None -> nan
    | Some o -> (
      match Analyze.OLS.estimates o with
      | Some [ e ] -> e
      | Some _ | None -> nan)
  in
  let rows =
    Hashtbl.fold (fun name _ acc -> name :: acc) time_results []
    |> List.sort compare
    |> List.map (fun name ->
           [
             Ltc_util.Table.Str name;
             Ltc_util.Table.Float (estimate time_results name /. 1000.0);
             Ltc_util.Table.Float (estimate alloc_results name);
           ])
  in
  Ltc_util.Table.print ~float_digits:2
    ~header:[ "benchmark"; "time (us/run)"; "minor words/run" ]
    rows;
  print_newline ()

(* -------------------------------------------------------------------- cli *)

let list_experiments () =
  let rows =
    List.map
      (fun (e : Figures.t) ->
        [
          Ltc_util.Table.Str e.Figures.id;
          Ltc_util.Table.Str e.Figures.panels;
          Ltc_util.Table.Float e.Figures.default_scale;
        ])
      Figures.all
    @ [
        [
          Ltc_util.Table.Str "micro";
          Ltc_util.Table.Str "per-arrival decision costs (bechamel)";
          Ltc_util.Table.Float 1.0;
        ];
        [
          Ltc_util.Table.Str flow_batch_id;
          Ltc_util.Table.Str "MCF arena/workspace reuse vs cold solves";
          Ltc_util.Table.Float 1.0;
        ];
        [
          Ltc_util.Table.Str serve_replay_id;
          Ltc_util.Table.Str "journaled feed and checkpoint/restore costs";
          Ltc_util.Table.Float 1.0;
        ];
        [
          Ltc_util.Table.Str chaos_replay_id;
          Ltc_util.Table.Str "kill/restore survival under scripted faults";
          Ltc_util.Table.Float 1.0;
        ];
        [
          Ltc_util.Table.Str loadgen_id;
          Ltc_util.Table.Str "open-loop SLO latency under a flash crowd";
          Ltc_util.Table.Float 1.0;
        ];
        [
          Ltc_util.Table.Str serve_shard_id;
          Ltc_util.Table.Str "sharded serving vs a single session";
          Ltc_util.Table.Float 1.0;
        ];
      ]
  in
  Ltc_util.Table.print ~float_digits:2
    ~header:[ "id"; "panels"; "default scale" ]
    rows

let main ids scale reps seed jobs full list csv plot verbose metrics
    metrics_format json =
  if verbose then Ltc_util.Log.setup ~level:Logs.Debug ()
  else Ltc_util.Log.setup ();
  (match metrics with
  | None -> ()
  | Some _ ->
    Ltc_util.Metrics.set_enabled true;
    Ltc_util.Trace.set_enabled true);
  if list then begin
    list_experiments ();
    0
  end
  else if jobs < 1 then begin
    Printf.eprintf "--jobs must be at least 1 (got %d)\n" jobs;
    1
  end
  else begin
    let scale = if full then Some 1.0 else scale in
    let reps = if full && reps = 3 then 30 else reps in
    let ids =
      if ids = [] then
        Figures.ids ()
        @ [
            "micro"; flow_batch_id; serve_replay_id; chaos_replay_id;
            loadgen_id; serve_shard_id;
          ]
      else ids
    in
    let unknown =
      List.filter
        (fun id ->
          id <> "micro" && id <> flow_batch_id && id <> serve_replay_id
          && id <> chaos_replay_id && id <> loadgen_id
          && id <> serve_shard_id
          && Figures.find id = None)
        ids
    in
    match unknown with
    | _ :: _ ->
      Printf.eprintf "unknown experiment(s): %s\nuse --list to enumerate\n"
        (String.concat ", " unknown);
      1
    | [] ->
      Printf.printf
        "LTC benchmark harness — reproduction of ICDE'18 \
         \"Latency-oriented Task Completion via Spatial Crowdsourcing\"\n\n%!";
      let entries =
        List.filter_map
          (fun id ->
            if id = "micro" then begin
              run_micro ();
              None
            end
            else if id = flow_batch_id then
              Some (run_flow_batch ~scale:(Option.value scale ~default:1.0) ())
            else if id = serve_replay_id then Some (run_serve_replay ())
            else if id = chaos_replay_id then Some (run_chaos_replay ())
            else if id = loadgen_id then Some (run_loadgen ())
            else if id = serve_shard_id then Some (run_serve_shard ())
            else
              match Figures.find id with
              | Some e ->
                Some
                  (render_figure_stat
                     (run_figure ~jobs ~scale ~reps ~seed ~csv ~plot e))
              | None -> assert false)
          ids
      in
      Option.iter
        (fun path ->
          write_json ~path entries;
          Printf.printf "(bench json: %s)\n%!" path)
        json;
      Option.iter
        (fun path -> Ltc_util.Snapshot.write ~path metrics_format)
        metrics;
      0
  end

open Cmdliner

let ids_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT"
         ~doc:"Experiment ids to run (default: all). See --list.")

let scale_arg =
  Arg.(value & opt (some float) None
       & info [ "scale" ] ~docv:"S"
           ~doc:"Workload scale factor; 1.0 = the paper's cardinalities. \
                 Defaults to each experiment's laptop-friendly scale.")

let reps_arg =
  Arg.(value & opt int 3
       & info [ "reps" ] ~docv:"N"
           ~doc:"Repetitions per setting (paper: 30).")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Base RNG seed.")

let jobs_arg =
  Arg.(value & opt int (Ltc_util.Pool.default_jobs ())
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Domains used for the independent experiment cells (default: \
                 the machine's recommended domain count). Every output \
                 except the wall-clock runtime tables is identical for \
                 every value.")

let json_arg =
  Arg.(value & opt (some string) None
       & info [ "json" ] ~docv:"FILE"
           ~doc:"Write per-figure wall time and throughput (runs/sec) as a \
                 JSON object keyed $(b,BENCH_<id>) to $(docv).")

let full_arg =
  Arg.(value & flag
       & info [ "full" ]
           ~doc:"Paper-scale run: --scale 1.0 and 30 repetitions. Expect \
                 hours for fig4-scal.")

let list_arg =
  Arg.(value & flag & info [ "list" ] ~doc:"List available experiments.")

let csv_arg =
  Arg.(value & opt (some string) None
       & info [ "csv" ] ~docv:"DIR"
           ~doc:"Also write every table as a CSV file under $(docv).")

let plot_arg =
  Arg.(value & flag
       & info [ "plot" ] ~doc:"Render an ASCII chart under every table.")

let verbose_arg =
  Arg.(value & flag
       & info [ "verbose"; "v" ] ~doc:"Debug logging (batch solves etc.).")

let metrics_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Enable the metrics registry and span tracing, and write a \
                 snapshot to $(docv) after all experiments ($(b,-) for \
                 stdout).")

let metrics_format_conv =
  let parse s =
    match Ltc_util.Snapshot.format_of_string s with
    | Ok f -> Ok f
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, Ltc_util.Snapshot.pp_format)

let metrics_format_arg =
  Arg.(value & opt metrics_format_conv Ltc_util.Snapshot.Json
       & info [ "metrics-format" ] ~docv:"FMT"
           ~doc:"Snapshot format: $(b,json) or $(b,prom).")

let cmd =
  let doc = "regenerate the tables and figures of the LTC paper" in
  Cmd.v
    (Cmd.info "ltc-bench" ~doc)
    Term.(
      const main $ ids_arg $ scale_arg $ reps_arg $ seed_arg $ jobs_arg
      $ full_arg $ list_arg $ csv_arg $ plot_arg $ verbose_arg $ metrics_arg
      $ metrics_format_arg $ json_arg)

let () = exit (Cmd.eval' cmd)
